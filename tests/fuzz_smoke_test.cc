// Smoke coverage for the crash-schedule fuzzer (src/fuzz/).
//
// Three properties are pinned down here:
//   1. A batch of fixed seeds runs clean under every default protocol —
//      the IFA variants show zero violations and zero unnecessary aborts,
//      and the baselines honor their own contracts.
//   2. The fuzzer is deterministic: equal seeds produce bit-identical
//      cases and verdicts, which is what makes replay files trustworthy.
//   3. Fault injection is actually detectable: disabling undo tagging
//      under SelectiveRedo is caught within a small seed budget, shrinks
//      to a tiny crash schedule, and the emitted replay document
//      round-trips and reproduces the failure.
//   4. The parallel-recovery differential (Options::recovery_threads > 1)
//      composes with all of the above: clean seeds stay clean, replay
//      documents record the thread count, and the shrinker minimises
//      failures through the differential predicate.

//   5. Campaign sharding (RunFuzzCampaign with jobs > 1) is invisible in
//      the results: the verdict, the failing seed, the merged stats, and
//      the replay document are byte-identical to a serial campaign.
//   6. The group-commit pipeline composes with the fuzzer: campaigns with
//      group_commit on stay clean under every protocol, and replay
//      documents round-trip the pipeline knobs.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "fuzz/fuzzer.h"

namespace smdb {
namespace {

TEST(FuzzSmoke, FixedSeedsRunCleanUnderAllProtocols) {
  CrashScheduleFuzzer fuzzer;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    auto failure = fuzzer.RunSeed(seed);
    ASSERT_FALSE(failure.has_value())
        << "seed " << seed << " failed under "
        << failure->protocol.Name() << ": [" << failure->verdict.kind
        << "] " << failure->verdict.detail;
  }
  const FuzzStats& stats = fuzzer.stats();
  EXPECT_EQ(stats.cases, 50u);
  // 50 cases x 7 protocols.
  EXPECT_EQ(stats.runs, 350u);
  // The schedule sampler must actually exercise the failure model: crashes
  // that fire, crashes that get skipped, and at least one crash-all.
  EXPECT_GT(stats.crashes_fired, 0u);
  EXPECT_GT(stats.crashes_skipped, 0u);
  EXPECT_GT(stats.whole_machine_restarts, 0u);
  EXPECT_GT(stats.committed, 0u);
}

TEST(FuzzSmoke, EqualSeedsAreBitIdentical) {
  FuzzCase a = SampleFuzzCase(7);
  FuzzCase b = SampleFuzzCase(7);
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());

  CrashScheduleFuzzer f1;
  CrashScheduleFuzzer f2;
  FuzzVerdict v1 = f1.RunCase(a, RecoveryConfig::VolatileSelectiveRedo());
  FuzzVerdict v2 = f2.RunCase(b, RecoveryConfig::VolatileSelectiveRedo());
  EXPECT_EQ(v1.failed, v2.failed);
  EXPECT_EQ(v1.kind, v2.kind);
  EXPECT_EQ(v1.detail, v2.detail);
}

TEST(FuzzSmoke, CaseJsonRoundTrips) {
  FuzzCase original = SampleFuzzCase(12345);
  auto parsed_doc = json::Value::Parse(original.ToJson().Dump(2));
  ASSERT_TRUE(parsed_doc.ok()) << parsed_doc.status().ToString();
  auto restored = FuzzCase::FromJson(*parsed_doc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->ToJson().Dump(), original.ToJson().Dump());
}

TEST(FuzzSmoke, BrokenUndoTaggingIsCaughtShrunkAndReplayable) {
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::VolatileSelectiveRedo()};
  opts.disable_undo_tagging = true;
  CrashScheduleFuzzer fuzzer(opts);

  std::optional<FuzzFailure> failure;
  for (uint64_t seed = 0; seed < 60 && !failure.has_value(); ++seed) {
    failure = fuzzer.RunSeed(seed);
  }
  ASSERT_TRUE(failure.has_value())
      << "disabled undo tagging was not detected within 60 seeds";
  EXPECT_EQ(failure->verdict.kind, "ifa-verify") << failure->verdict.detail;

  FuzzCase shrunk = fuzzer.Shrink(*failure);
  EXPECT_LE(shrunk.crashes.size(), 2u);
  FuzzVerdict direct = fuzzer.RunCase(shrunk, failure->protocol);
  EXPECT_TRUE(direct.failed) << "shrunk case no longer fails";

  std::string replay_text = fuzzer.ReplayJson(*failure, shrunk);
  auto doc = CrashScheduleFuzzer::ParseReplay(replay_text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->seed, failure->seed);
  EXPECT_TRUE(doc->protocol.disable_undo_tagging);
  EXPECT_EQ(doc->fuzz_case.ToJson().Dump(), shrunk.ToJson().Dump());

  // Replaying the parsed document reproduces the direct run exactly.
  FuzzVerdict replayed = fuzzer.RunCase(doc->fuzz_case, doc->protocol);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.kind, direct.kind);
  EXPECT_EQ(replayed.detail, direct.detail);
}

TEST(FuzzSmoke, ParallelDifferentialIsCleanAndRecordedInReplays) {
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::VolatileSelectiveRedo(),
                    RecoveryConfig::StableEagerRedoAll()};
  opts.recovery_threads = 2;
  CrashScheduleFuzzer fuzzer(opts);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    auto failure = fuzzer.RunSeed(seed);
    ASSERT_FALSE(failure.has_value())
        << "seed " << seed << " diverged under "
        << failure->protocol.Name() << ": [" << failure->verdict.kind
        << "] " << failure->verdict.detail;
  }
  // The differential actually ran: more harness runs than cases x protocols.
  EXPECT_GT(fuzzer.stats().runs, 20u);

  // Replay documents carry the thread count so a parallel-only divergence
  // re-executes at the width that exposed it.
  FuzzFailure failure;
  failure.seed = 7;
  failure.fuzz_case = SampleFuzzCase(7);
  failure.protocol = RecoveryConfig::VolatileSelectiveRedo();
  failure.verdict = {true, "parallel-divergence", "digest mismatch"};
  std::string text = fuzzer.ReplayJson(failure, failure.fuzz_case);
  auto doc = CrashScheduleFuzzer::ParseReplay(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->recovery_threads, 2u);
  EXPECT_EQ(doc->recorded_kind, "parallel-divergence");
}

TEST(FuzzSmoke, ShrinkerMinimisesThroughTheDifferentialPredicate) {
  // With recovery_threads set, every still-fails probe of the shrinker
  // re-runs the serial leg *and* the per-recovery differential leg, so a
  // minimised schedule is guaranteed to still fail under the combined
  // predicate — the property that makes shrunk parallel-divergence
  // reproducers trustworthy. Forced here with the undo-tagging fault,
  // which the serial leg catches.
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::VolatileSelectiveRedo()};
  opts.disable_undo_tagging = true;
  opts.recovery_threads = 2;
  opts.max_shrink_runs = 120;
  CrashScheduleFuzzer fuzzer(opts);

  std::optional<FuzzFailure> failure;
  for (uint64_t seed = 0; seed < 60 && !failure.has_value(); ++seed) {
    failure = fuzzer.RunSeed(seed);
  }
  ASSERT_TRUE(failure.has_value());
  FuzzCase shrunk = fuzzer.Shrink(*failure);
  FuzzVerdict direct = fuzzer.RunCase(shrunk, failure->protocol);
  EXPECT_TRUE(direct.failed) << "shrunk case no longer fails differentially";
}

TEST(FuzzSmoke, CampaignShardingIsDeterministic) {
  // The undo-tagging fault guarantees a failure inside the seed range, so
  // this exercises the interesting path: a failing chunk whose later seeds
  // must be discarded. Verdict, failing seed, merged stats, and the replay
  // document must not depend on the job count.
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::VolatileSelectiveRedo()};
  opts.disable_undo_tagging = true;
  FuzzCampaignResult serial = RunFuzzCampaign(opts, 0, 60, 1);
  FuzzCampaignResult sharded = RunFuzzCampaign(opts, 0, 60, 4);

  ASSERT_TRUE(serial.failure.has_value());
  ASSERT_TRUE(sharded.failure.has_value());
  EXPECT_EQ(serial.failure->seed, sharded.failure->seed);
  EXPECT_EQ(serial.failure->verdict.kind, sharded.failure->verdict.kind);
  EXPECT_EQ(serial.failure->verdict.detail, sharded.failure->verdict.detail);
  EXPECT_EQ(serial.failure->fuzz_case.ToJson().Dump(),
            sharded.failure->fuzz_case.ToJson().Dump());

  EXPECT_EQ(serial.stats.cases, sharded.stats.cases);
  EXPECT_EQ(serial.stats.runs, sharded.stats.runs);
  EXPECT_EQ(serial.stats.crashes_fired, sharded.stats.crashes_fired);
  EXPECT_EQ(serial.stats.crashes_skipped, sharded.stats.crashes_skipped);
  EXPECT_EQ(serial.stats.whole_machine_restarts,
            sharded.stats.whole_machine_restarts);
  EXPECT_EQ(serial.stats.committed, sharded.stats.committed);

  // Replay serialization depends only on (opts, failure) — byte-identical.
  CrashScheduleFuzzer f1(opts);
  CrashScheduleFuzzer f2(opts);
  EXPECT_EQ(f1.ReplayJson(*serial.failure, serial.failure->fuzz_case),
            f2.ReplayJson(*sharded.failure, sharded.failure->fuzz_case));
}

TEST(FuzzSmoke, GroupCommitCampaignRunsCleanUnderAllProtocols) {
  // Group commit is orthogonal to protocol identity: the same seeds that
  // are clean synchronously must stay clean with coalesced forces — the
  // acknowledgement-after-force discipline means no observer ever sees a
  // commit a crash could annul.
  CrashScheduleFuzzer::Options opts;
  opts.group_commit = true;
  FuzzCampaignResult result = RunFuzzCampaign(opts, 0, 20, 2);
  ASSERT_FALSE(result.failure.has_value())
      << "seed " << result.failure->seed << " failed under "
      << result.failure->protocol.Name() << ": ["
      << result.failure->verdict.kind << "] "
      << result.failure->verdict.detail;
  EXPECT_EQ(result.stats.cases, 20u);
  EXPECT_GT(result.stats.committed, 0u);
  EXPECT_GT(result.stats.crashes_fired, 0u);
}

TEST(FuzzSmoke, GroupCommitKnobsRoundTripThroughReplays) {
  CrashScheduleFuzzer::Options opts;
  opts.protocols = {RecoveryConfig::StableEagerRedoAll()};
  opts.group_commit = true;
  opts.group_commit_window_ns = 50'000;
  opts.group_commit_max_batch = 16;
  CrashScheduleFuzzer fuzzer(opts);

  FuzzFailure failure;
  failure.seed = 3;
  failure.fuzz_case = SampleFuzzCase(3);
  failure.protocol =
      fuzzer.EffectiveProtocol(RecoveryConfig::StableEagerRedoAll());
  failure.verdict = {true, "ifa-verify", "synthetic"};
  std::string text = fuzzer.ReplayJson(failure, failure.fuzz_case);
  auto doc = CrashScheduleFuzzer::ParseReplay(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->group_commit);
  EXPECT_EQ(doc->group_commit_window_ns, 50'000u);
  EXPECT_EQ(doc->group_commit_max_batch, 16u);
  EXPECT_TRUE(doc->protocol.group_commit);
  EXPECT_EQ(doc->protocol.group_commit_window_ns, 50'000u);
  EXPECT_EQ(doc->protocol.group_commit_max_batch, 16u);
}

TEST(FuzzSmoke, RebootAllSurvivesSplitHeavySchedules) {
  // Split-heavy slice of the ROADMAP item 5 regression: BaselineRebootAll
  // reloads the whole stable database, so every B+-tree split must have
  // been forced durably at structural commit — the sampled cases are
  // re-biased towards index traffic so splits happen before (and between)
  // the sampled crash schedules' whole-machine reboots.
  CrashScheduleFuzzer fuzzer;
  for (uint64_t seed = 0; seed < 15; ++seed) {
    FuzzCase fc = SampleFuzzCase(seed);
    fc.workload.index_op_ratio = 0.6;
    fc.workload.index_key_space = 64;  // dense keys: splits early and often
    FuzzVerdict v = fuzzer.RunCase(fc, RecoveryConfig::BaselineRebootAll());
    ASSERT_FALSE(v.failed)
        << "seed " << seed << ": [" << v.kind << "] " << v.detail;
  }
}

TEST(FuzzSmoke, EnvDrivenCampaignMatrix) {
  // CI hook: SMDB_FUZZ_GROUP_COMMIT=1 / SMDB_FUZZ_ON_DEMAND=1 /
  // SMDB_FUZZ_EXEC_THREADS=W / SMDB_FUZZ_JOBS=N re-run a slice of
  // the default campaign in the sanitizer build's configuration without a
  // dedicated test binary per matrix cell. Unset, this is a plain small
  // serial campaign.
  CrashScheduleFuzzer::Options opts;
  const char* gc = std::getenv("SMDB_FUZZ_GROUP_COMMIT");
  opts.group_commit = gc != nullptr && std::string(gc) == "1";
  const char* od = std::getenv("SMDB_FUZZ_ON_DEMAND");
  opts.on_demand = od != nullptr && std::string(od) == "1";
  const char* ew = std::getenv("SMDB_FUZZ_EXEC_THREADS");
  if (ew != nullptr) {
    int v = std::atoi(ew);
    if (v > 0) opts.execution_threads = static_cast<uint32_t>(v);
  }
  const char* jobs_env = std::getenv("SMDB_FUZZ_JOBS");
  unsigned jobs = 1;
  if (jobs_env != nullptr) {
    int v = std::atoi(jobs_env);
    if (v > 0) jobs = static_cast<unsigned>(v);
  }
  FuzzCampaignResult result = RunFuzzCampaign(opts, 100, 10, jobs);
  ASSERT_FALSE(result.failure.has_value())
      << "seed " << result.failure->seed << " failed under "
      << result.failure->protocol.Name() << ": ["
      << result.failure->verdict.kind << "] "
      << result.failure->verdict.detail;
  EXPECT_EQ(result.stats.cases, 10u);
}

}  // namespace
}  // namespace smdb
