#include "sim/machine.h"

#include <gtest/gtest.h>

#include "sim/config.h"

namespace smdb {
namespace {

MachineConfig SmallConfig(uint16_t nodes = 4) {
  MachineConfig c;
  c.num_nodes = nodes;
  return c;
}

TEST(MachineTest, ReadYourWrites) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(256);
  uint64_t v = 0xDEADBEEF;
  ASSERT_TRUE(m.WriteValue(0, a, v).ok());
  auto r = m.ReadValue<uint64_t>(0, a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, v);
}

TEST(MachineTest, CoherentAcrossNodes) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  ASSERT_TRUE(m.WriteValue<uint32_t>(0, a, 7).ok());
  auto r = m.ReadValue<uint32_t>(3, a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7u);
  // After a remote write, node 3's copy must be invalidated.
  ASSERT_TRUE(m.WriteValue<uint32_t>(1, a, 9).ok());
  auto r2 = m.ReadValue<uint32_t>(3, a);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 9u);
}

TEST(MachineTest, WwMigrationLeavesSoleCopy) {
  // History H_ww1: w_x[l]; w_y[l] — the line migrates and only node y holds
  // it afterwards.
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  LineAddr line = m.LineOf(a);
  ASSERT_TRUE(m.WriteValue<uint32_t>(0, a, 1).ok());
  ASSERT_TRUE(m.WriteValue<uint32_t>(1, a, 2).ok());
  const DirEntry* e = m.FindLine(line);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, 1);
  EXPECT_EQ(e->num_sharers(), 1);
  EXPECT_GE(m.stats().migrations, 1u);
}

TEST(MachineTest, WrReplication) {
  // History H_wr: w_x[l]; r_y[l] — both nodes end with a valid copy.
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  LineAddr line = m.LineOf(a);
  ASSERT_TRUE(m.WriteValue<uint32_t>(0, a, 1).ok());
  auto r = m.ReadValue<uint32_t>(2, a);
  ASSERT_TRUE(r.ok());
  const DirEntry* e = m.FindLine(line);
  EXPECT_EQ(e->num_sharers(), 2);
  EXPECT_TRUE(e->cached_by(0));
  EXPECT_TRUE(e->cached_by(2));
  EXPECT_GE(m.stats().replications, 1u);
}

TEST(MachineTest, CrashDestroysSoleCopy) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  LineAddr line = m.LineOf(a);
  ASSERT_TRUE(m.WriteValue<uint32_t>(1, a, 42).ok());
  m.CrashNode(1);
  EXPECT_TRUE(m.IsLineLost(line));
  EXPECT_FALSE(m.ProbeLine(line));
  auto r = m.ReadValue<uint32_t>(0, a);
  EXPECT_TRUE(r.status().IsLineLost());
}

TEST(MachineTest, CrashSparesReplicatedLine) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  LineAddr line = m.LineOf(a);
  ASSERT_TRUE(m.WriteValue<uint32_t>(1, a, 42).ok());
  ASSERT_TRUE(m.ReadValue<uint32_t>(2, a).ok());  // replicate
  m.CrashNode(1);
  EXPECT_FALSE(m.IsLineLost(line));
  EXPECT_TRUE(m.ProbeLine(line));
  auto r = m.ReadValue<uint32_t>(0, a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42u);
}

TEST(MachineTest, CrashDestroysHomeMemory) {
  Machine m(SmallConfig(2));
  // Find an address homed on node 1.
  Addr a = m.AllocShared(1024);
  Addr on1 = a;
  while (m.HomeOf(m.LineOf(on1)) != 1) on1 += m.line_size();
  ASSERT_TRUE(m.WriteValue<uint32_t>(0, on1, 5).ok());
  // Install to memory then drop cached copies so only home memory holds it.
  uint32_t v = 5;
  m.InstallToMemory(on1, &v, sizeof(v));
  m.CrashNode(1);
  EXPECT_TRUE(m.IsLineLost(m.LineOf(on1)));
}

TEST(MachineTest, InstallToMemoryRecoversLostLine) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  ASSERT_TRUE(m.WriteValue<uint32_t>(1, a, 7).ok());
  m.CrashNode(1);
  ASSERT_TRUE(m.IsLineLost(m.LineOf(a)));
  uint32_t v = 3;
  m.InstallToMemory(a, &v, sizeof(v));
  EXPECT_FALSE(m.IsLineLost(m.LineOf(a)));
  auto r = m.ReadValue<uint32_t>(0, a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 3u);
}

TEST(MachineTest, LineLockMutualExclusionAndTiming) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  LineAddr line = m.LineOf(a);
  ASSERT_TRUE(m.GetLine(0, line).ok());
  EXPECT_TRUE(m.LineLockHeldBy(line, 0));
  SimTime t0 = m.NodeClock(1);
  m.ReleaseLine(0, line);
  ASSERT_TRUE(m.GetLine(1, line).ok());
  EXPECT_TRUE(m.LineLockHeldBy(line, 1));
  m.ReleaseLine(1, line);
  EXPECT_GT(m.NodeClock(1), t0);
}

TEST(MachineTest, LineLockContentionSerializes) {
  Machine m(SmallConfig(8));
  Addr a = m.AllocShared(128);
  LineAddr line = m.LineOf(a);
  // All nodes contend for the same line at time ~0.
  for (NodeId n = 0; n < 8; ++n) {
    ASSERT_TRUE(m.GetLine(n, line).ok());
    m.Tick(n, 500);  // hold
    m.ReleaseLine(n, line);
  }
  // Later acquirers waited for earlier holders: node 7's clock >> node 0's.
  EXPECT_GT(m.NodeClock(7), m.NodeClock(0));
  EXPECT_GT(m.stats().line_lock_wait_ns, 0u);
}

TEST(MachineTest, CrashReleasesLineLocks) {
  Machine m(SmallConfig());
  // Pick a line homed on node 0 with a valid (clean) home-memory copy, so
  // it survives node 1's crash even while node 1 holds it exclusively via
  // the line lock (getline of a clean line leaves memory valid).
  Addr a = m.AllocShared(1024);
  while (m.HomeOf(m.LineOf(a)) != 0) a += m.line_size();
  uint32_t v = 1;
  m.InstallToMemory(a, &v, sizeof(v));
  LineAddr line = m.LineOf(a);
  ASSERT_TRUE(m.GetLine(1, line).ok());
  EXPECT_TRUE(m.LineLockHeldBy(line, 1));
  m.CrashNode(1);
  EXPECT_FALSE(m.LineLockHeldBy(line, 1));
  EXPECT_FALSE(m.IsLineLost(line));
  EXPECT_TRUE(m.GetLine(2, line).ok());
  m.ReleaseLine(2, line);
}

TEST(MachineTest, WriteBroadcastKeepsAllCopiesValid) {
  MachineConfig c = SmallConfig();
  c.coherence = CoherenceKind::kWriteBroadcast;
  Machine m(c);
  Addr a = m.AllocShared(128);
  ASSERT_TRUE(m.WriteValue<uint32_t>(0, a, 1).ok());
  ASSERT_TRUE(m.ReadValue<uint32_t>(1, a).ok());  // replicate
  ASSERT_TRUE(m.WriteValue<uint32_t>(1, a, 2).ok());
  const DirEntry* e = m.FindLine(m.LineOf(a));
  // Under write-broadcast the write updates node 0's copy in place.
  EXPECT_EQ(e->num_sharers(), 2);
  auto r = m.ReadValue<uint32_t>(0, a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);
  EXPECT_GE(m.stats().broadcast_updates, 1u);
  // Crash of the writer does not lose the line.
  m.CrashNode(1);
  EXPECT_FALSE(m.IsLineLost(m.LineOf(a)));
}

TEST(MachineTest, CoherenceHooksFire) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  std::vector<CoherenceEvent> events;
  m.AddCoherenceHook([&](const CoherenceEvent& ev) { events.push_back(ev); });
  ASSERT_TRUE(m.WriteValue<uint32_t>(0, a, 1).ok());
  ASSERT_TRUE(m.ReadValue<uint32_t>(1, a).ok());  // downgrade 0
  ASSERT_TRUE(m.WriteValue<uint32_t>(2, a, 2).ok());  // invalidate 0 and 1
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[0].kind, CoherenceEvent::Kind::kDowngrade);
  EXPECT_EQ(events[0].from, 0);
  EXPECT_EQ(events[0].to, 1);
  bool saw_invalidate = false;
  for (const auto& ev : events) {
    if (ev.kind == CoherenceEvent::Kind::kInvalidate) saw_invalidate = true;
  }
  EXPECT_TRUE(saw_invalidate);
}

TEST(MachineTest, ActiveBitTravelsWithEvents) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  ASSERT_TRUE(m.WriteValue<uint32_t>(0, a, 1).ok());
  m.SetLineActive(m.LineOf(a), true);
  bool saw_active = false;
  m.AddCoherenceHook([&](const CoherenceEvent& ev) {
    if (ev.active_bit) saw_active = true;
  });
  ASSERT_TRUE(m.WriteValue<uint32_t>(1, a, 2).ok());
  EXPECT_TRUE(saw_active);
}

TEST(MachineTest, RebootAllLosesEverything) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(512);
  ASSERT_TRUE(m.WriteValue<uint32_t>(0, a, 1).ok());
  m.RebootAll();
  EXPECT_TRUE(m.IsLineLost(m.LineOf(a)));
  for (NodeId n = 0; n < 4; ++n) EXPECT_TRUE(m.NodeAlive(n));
}

TEST(MachineTest, SnoopReadSeesCoherentPicture) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(128);
  ASSERT_TRUE(m.WriteValue<uint32_t>(2, a, 77).ok());
  uint32_t v = 0;
  ASSERT_TRUE(m.SnoopRead(a, &v, sizeof(v)).ok());
  EXPECT_EQ(v, 77u);
  // Snooping must not change any state.
  const DirEntry* e = m.FindLine(m.LineOf(a));
  EXPECT_EQ(e->owner, 2);
}

TEST(MachineTest, MultiLineReadWrite) {
  Machine m(SmallConfig());
  Addr a = m.AllocShared(1024);
  std::vector<uint8_t> data(500);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i * 7);
  ASSERT_TRUE(m.Write(0, a + 50, data.data(), data.size()).ok());
  std::vector<uint8_t> out(500);
  ASSERT_TRUE(m.Read(3, a + 50, out.data(), out.size()).ok());
  EXPECT_EQ(data, out);
}

TEST(MachineTest, AllocLocalHomesOnNode) {
  Machine m(SmallConfig());
  Addr a = m.AllocLocal(2, 4096);
  for (uint32_t i = 0; i < 4096 / m.line_size(); ++i) {
    EXPECT_EQ(m.HomeOf(m.LineOf(a) + i), 2);
  }
}

}  // namespace
}  // namespace smdb
