// Unit tests for the transaction layer: strict 2PL, the update protocol
// (undo tagging, Page-LSN, WAL table), commit/abort, rollback via CLRs,
// deadlock detection, and the executor.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "txn/executor.h"

namespace smdb {
namespace {

std::vector<uint8_t> Value(uint8_t fill) {
  return std::vector<uint8_t>(22, fill);
}

struct Fx {
  explicit Fx(RecoveryConfig rc = RecoveryConfig::VolatileSelectiveRedo())
      : db(MakeCfg(rc)) {
    auto t = db.CreateTable(32);
    EXPECT_TRUE(t.ok());
    table = *t;
  }
  static DatabaseConfig MakeCfg(RecoveryConfig rc) {
    DatabaseConfig c;
    c.machine.num_nodes = 4;
    c.recovery = rc;
    return c;
  }
  Database db;
  std::vector<RecordId> table;
};

TEST(TxnTest, ReadYourCommittedWrites) {
  Fx f;
  Transaction* t = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(9)).ok());
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
  Transaction* t2 = f.db.txn().Begin(1);
  auto r = f.db.txn().Read(t2, f.table[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value(9));
  ASSERT_TRUE(f.db.txn().Commit(t2).ok());
}

TEST(TxnTest, UpdateSetsUndoTagAndCommitClearsIt) {
  Fx f;  // Selective Redo => undo tagging on
  Transaction* t = f.db.txn().Begin(2);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(1)).ok());
  auto slot = f.db.records().SnoopSlot(f.table[0]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->tag, TagForNode(2));
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
  slot = f.db.records().SnoopSlot(f.table[0]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->tag, kTagNone);
}

TEST(TxnTest, RedoAllConfigWritesNoTags) {
  Fx f(RecoveryConfig::VolatileRedoAll());
  Transaction* t = f.db.txn().Begin(2);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(1)).ok());
  auto slot = f.db.records().SnoopSlot(f.table[0]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->tag, kTagNone);
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
}

TEST(TxnTest, UpdateAdvancesPageLsn) {
  Fx f;
  Transaction* t = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(1)).ok());
  auto base = f.db.buffers().BaseOf(f.table[0].page);
  ASSERT_TRUE(base.ok());
  uint64_t page_lsn = 0;
  ASSERT_TRUE(f.db.machine()
                  .SnoopRead(*base + PageLayout::kPageLsnOffset, &page_lsn, 8)
                  .ok());
  auto slot = f.db.records().SnoopSlot(f.table[0]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(page_lsn, slot->usn);
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
}

TEST(TxnTest, CommitForcesLog) {
  Fx f;
  Transaction* t = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(1)).ok());
  EXPECT_GT(f.db.log().TailSize(0), 0u);
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
  // The tail at the commit point was forced (lock releases may follow).
  bool commit_stable = false;
  f.db.log().ForEachStable(0, [&](const LogRecord& rec) {
    if (rec.type == LogRecordType::kCommit && rec.txn == t->id) {
      commit_stable = true;
    }
  });
  EXPECT_TRUE(commit_stable);
}

TEST(TxnTest, AbortRestoresBeforeImagesAndWritesClrs) {
  Fx f;
  Transaction* setup = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(setup, f.table[0], Value(5)).ok());
  ASSERT_TRUE(f.db.txn().Commit(setup).ok());

  Transaction* t = f.db.txn().Begin(1);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(6)).ok());
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(7)).ok());
  ASSERT_TRUE(f.db.txn().Update(t, f.table[1], Value(8)).ok());
  ASSERT_TRUE(f.db.txn().Abort(t).ok());

  auto s0 = f.db.records().SnoopSlot(f.table[0]);
  ASSERT_TRUE(s0.ok());
  EXPECT_EQ(s0->data, Value(5));
  EXPECT_EQ(s0->tag, kTagNone);
  auto s1 = f.db.records().SnoopSlot(f.table[1]);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->data, Value(0));
  int clrs = 0;
  f.db.log().ForEachAll(1, [&](const LogRecord& rec) {
    if (rec.type == LogRecordType::kUpdate && rec.update().is_clr) ++clrs;
  });
  EXPECT_EQ(clrs, 3);
}

TEST(TxnTest, AbortRollsBackIndexOps) {
  Fx f;
  Transaction* setup = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().IndexInsert(setup, 5, f.table[0]).ok());
  ASSERT_TRUE(f.db.txn().Commit(setup).ok());

  Transaction* t = f.db.txn().Begin(1);
  ASSERT_TRUE(f.db.txn().IndexDelete(t, 5).ok());
  ASSERT_TRUE(f.db.txn().IndexInsert(t, 9, f.table[1]).ok());
  ASSERT_TRUE(f.db.txn().Abort(t).ok());

  auto l5 = f.db.index().Lookup(0, 5);
  ASSERT_TRUE(l5.ok());
  EXPECT_TRUE(l5->has_value());
  auto l9 = f.db.index().Lookup(0, 9);
  ASSERT_TRUE(l9.ok());
  EXPECT_FALSE(l9->has_value());
}

TEST(TxnTest, Strict2PL_LocksHeldUntilCommit) {
  Fx f;
  Transaction* t0 = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(t0, f.table[0], Value(1)).ok());
  Transaction* t1 = f.db.txn().Begin(1);
  EXPECT_TRUE(f.db.txn().Read(t1, f.table[0]).status().IsBusy());
  ASSERT_TRUE(f.db.txn().Commit(t0).ok());
  auto poll = f.db.txn().PollLock(t1, RecordLockName(f.table[0]),
                                  LockMode::kShared);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(*poll, LockResult::kGranted);
  auto r = f.db.txn().Read(t1, f.table[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value(1));
}

TEST(TxnTest, SharedReadersDoNotBlock) {
  Fx f;
  Transaction* t0 = f.db.txn().Begin(0);
  Transaction* t1 = f.db.txn().Begin(1);
  ASSERT_TRUE(f.db.txn().Read(t0, f.table[0]).ok());
  ASSERT_TRUE(f.db.txn().Read(t1, f.table[0]).ok());
  ASSERT_TRUE(f.db.txn().Commit(t0).ok());
  ASSERT_TRUE(f.db.txn().Commit(t1).ok());
}

TEST(TxnTest, DeadlockDetected) {
  Fx f;
  Transaction* t0 = f.db.txn().Begin(0);
  Transaction* t1 = f.db.txn().Begin(1);
  ASSERT_TRUE(f.db.txn().Update(t0, f.table[0], Value(1)).ok());
  ASSERT_TRUE(f.db.txn().Update(t1, f.table[1], Value(2)).ok());
  // t0 waits for t1's lock...
  EXPECT_TRUE(f.db.txn().Update(t0, f.table[1], Value(3)).IsBusy());
  // ...and t1 requesting t0's lock closes the cycle.
  Status s = f.db.txn().Update(t1, f.table[0], Value(4));
  EXPECT_TRUE(s.IsDeadlock());
  ASSERT_TRUE(f.db.txn().Abort(t1).ok());
  // t0 gets the lock after the victim aborts.
  auto poll = f.db.txn().PollLock(t0, RecordLockName(f.table[1]),
                                  LockMode::kExclusive);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(*poll, LockResult::kGranted);
  ASSERT_TRUE(f.db.txn().Update(t0, f.table[1], Value(3)).ok());
  ASSERT_TRUE(f.db.txn().Commit(t0).ok());
}

TEST(TxnTest, WrongValueSizeRejected) {
  Fx f;
  Transaction* t = f.db.txn().Begin(0);
  EXPECT_EQ(f.db.txn().Update(t, f.table[0], {1, 2, 3}).code(),
            Status::Code::kInvalidArgument);
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
}

TEST(TxnTest, CursorStabilityReleasesReadLock) {
  Fx f;
  Transaction* t0 = f.db.txn().Begin(0);
  auto r = f.db.txn().Read(t0, f.table[0], Isolation::kCursorStability);
  ASSERT_TRUE(r.ok());
  // The S lock is gone: a writer is not blocked.
  Transaction* t1 = f.db.txn().Begin(1);
  ASSERT_TRUE(f.db.txn().Update(t1, f.table[0], Value(5)).ok());
  ASSERT_TRUE(f.db.txn().Commit(t1).ok());
  // Non-repeatable read is the accepted consequence of degree 2.
  auto r2 = f.db.txn().Read(t0, f.table[0], Isolation::kCursorStability);
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(*r, *r2);
  ASSERT_TRUE(f.db.txn().Commit(t0).ok());
}

TEST(TxnTest, CursorStabilityKeepsWriteLocks) {
  Fx f;
  Transaction* t0 = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(t0, f.table[0], Value(1)).ok());
  // A cursor-stability read of a record this txn WROTE must not drop the
  // X lock (strict 2PL for updates is unconditional).
  auto r = f.db.txn().Read(t0, f.table[0], Isolation::kCursorStability);
  ASSERT_TRUE(r.ok());
  Transaction* t1 = f.db.txn().Begin(1);
  EXPECT_TRUE(f.db.txn().Read(t1, f.table[0]).status().IsBusy());
  ASSERT_TRUE(f.db.txn().Commit(t0).ok());
  auto poll = f.db.txn().PollLock(t1, RecordLockName(f.table[0]),
                                  LockMode::kShared);
  ASSERT_TRUE(poll.ok());
  ASSERT_TRUE(f.db.txn().Commit(t1).ok());
}

TEST(TxnTest, BrowseReadSeesUncommittedAndReplicatesLine) {
  // Section 3.2: with dirty reads allowed, H_wr arises even when a single
  // object occupies the cache line — padding can never substitute for LBM.
  DatabaseConfig cfg = Fx::MakeCfg(RecoveryConfig::VolatileSelectiveRedo());
  cfg.record_data_size = 118;  // one record per 128-byte line
  Database db(cfg);
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  Transaction* writer = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(writer, (*table)[0],
                              std::vector<uint8_t>(118, 0xEE)).ok());
  uint64_t repl_before = db.machine().stats().replications;
  Transaction* reader = db.txn().Begin(1);
  auto r = db.txn().Read(reader, (*table)[0], Isolation::kBrowse);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, std::vector<uint8_t>(118, 0xEE)) << "browse read blocked?";
  EXPECT_GT(db.machine().stats().replications, repl_before)
      << "H_wr replication did not occur";
  ASSERT_TRUE(db.txn().Abort(writer).ok());
  ASSERT_TRUE(db.txn().Commit(reader).ok());
}

TEST(TxnTest, DirtyReadSeesUncommitted) {
  Fx f;
  Transaction* t = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(0xEE)).ok());
  auto r = f.db.txn().DirtyRead(3, f.table[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value(0xEE));
  ASSERT_TRUE(f.db.txn().Abort(t).ok());
}

TEST(ExecutorTest, RunsScriptsToCompletion) {
  Fx f;
  SystemExecutor ex(&f.db.txn(), &f.db.machine(), 7);
  for (NodeId n = 0; n < 4; ++n) {
    TxnScript s;
    s.ops.push_back(Op::Update(f.table[n], Value(uint8_t(n + 1))));
    s.ops.push_back(Op::Read(f.table[(n + 1) % 4]));
    s.ops.push_back(Op::Commit());
    ex.executor(n).Enqueue(std::move(s));
  }
  ex.Run();
  EXPECT_TRUE(ex.AllIdle());
  EXPECT_EQ(ex.TotalStats().committed, 4u);
  for (NodeId n = 0; n < 4; ++n) {
    auto slot = f.db.records().SnoopSlot(f.table[n]);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(uint8_t(n + 1)));
  }
}

TEST(ExecutorTest, ConflictingScriptsSerialize) {
  Fx f;
  SystemExecutor ex(&f.db.txn(), &f.db.machine(), 11);
  // All nodes update the same record: heavy conflicts, possibly deadlock
  // retries; everything must still commit exactly once per script.
  for (NodeId n = 0; n < 4; ++n) {
    for (int i = 0; i < 3; ++i) {
      TxnScript s;
      s.ops.push_back(Op::Update(f.table[0], Value(uint8_t(n * 10 + i))));
      s.ops.push_back(Op::Update(f.table[1], Value(uint8_t(n * 10 + i))));
      s.ops.push_back(Op::Commit());
      ex.executor(n).Enqueue(std::move(s));
    }
  }
  ex.Run();
  EXPECT_TRUE(ex.AllIdle());
  EXPECT_EQ(ex.TotalStats().committed, 12u);
  // Both records were last written by the same transaction (atomicity).
  auto a = f.db.records().SnoopSlot(f.table[0]);
  auto b = f.db.records().SnoopSlot(f.table[1]);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->data, b->data);
}

TEST(ExecutorTest, VoluntaryAbortScript) {
  Fx f;
  IfaChecker checker(&f.db);
  f.db.txn().AddObserver(&checker);
  checker.RegisterTable(f.table);
  SystemExecutor ex(&f.db.txn(), &f.db.machine(), 3);
  TxnScript s;
  s.ops.push_back(Op::Update(f.table[5], Value(0x66)));
  s.ops.push_back(Op::Abort());
  ex.executor(0).Enqueue(std::move(s));
  ex.Run();
  EXPECT_EQ(ex.TotalStats().committed, 0u);
  EXPECT_EQ(ex.TotalStats().aborted_other, 1u);
  auto slot = f.db.records().SnoopSlot(f.table[5]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0));
  EXPECT_TRUE(checker.VerifyAll().ok());
}

TEST(TxnTest, LockOpsChainedIntoTxnLog) {
  Fx f;
  Transaction* t = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Read(t, f.table[0]).ok());
  ASSERT_TRUE(f.db.txn().Update(t, f.table[1], Value(2)).ok());
  // The chain head is the last record; walking prev_lsn reaches the Begin.
  int chain_len = 0;
  Lsn lsn = t->last_lsn;
  std::map<Lsn, LogRecord> by_lsn;
  f.db.log().ForEachAll(0, [&](const LogRecord& rec) {
    by_lsn[rec.lsn] = rec;
  });
  while (lsn != kInvalidLsn && chain_len < 100) {
    auto it = by_lsn.find(lsn);
    ASSERT_NE(it, by_lsn.end());
    EXPECT_EQ(it->second.txn, t->id);
    lsn = it->second.prev_lsn;
    ++chain_len;
  }
  EXPECT_GE(chain_len, 4);  // begin + S-lock + X-lock + update
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
}

}  // namespace
}  // namespace smdb
