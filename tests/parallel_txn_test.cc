// Tests for parallel (multi-node) transactions — the section 9 extension:
// one logical transaction with branches on several nodes, committed and
// aborted as a group; the crash of any participant node annuls the whole
// transaction, while independent transactions remain isolated.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/recovery_manager.h"

namespace smdb {
namespace {

std::vector<uint8_t> Value(uint8_t fill) {
  return std::vector<uint8_t>(22, fill);
}

struct Fx {
  explicit Fx(RecoveryConfig rc = RecoveryConfig::VolatileSelectiveRedo())
      : db(MakeCfg(rc)), checker(&db) {
    db.txn().AddObserver(&checker);
    auto t = db.CreateTable(64);
    EXPECT_TRUE(t.ok());
    table = *t;
    checker.RegisterTable(table);
    EXPECT_TRUE(db.Checkpoint(0).ok());
  }
  static DatabaseConfig MakeCfg(RecoveryConfig rc) {
    DatabaseConfig c;
    c.machine.num_nodes = 6;
    c.recovery = rc;
    return c;
  }
  Database db;
  IfaChecker checker;
  std::vector<RecordId> table;
};

TEST(ParallelTxnTest, GroupCommitAppliesAllBranches) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1, 2});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(2), fx.table[2], Value(3)).ok());
  ASSERT_TRUE(fx.db.txn().CommitParallel(*ptxn).ok());
  for (int i = 0; i < 3; ++i) {
    auto slot = fx.db.records().SnoopSlot(fx.table[i]);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(uint8_t(i + 1)));
  }
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(ParallelTxnTest, GroupAbortRollsBackAllBranches) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
  ASSERT_TRUE(fx.db.txn().AbortParallel(*ptxn).ok());
  for (int i = 0; i < 2; ++i) {
    auto slot = fx.db.records().SnoopSlot(fx.table[i]);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(0));
  }
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(ParallelTxnTest, ParticipantCrashAbortsWholeTransaction) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::VolatileRedoAll()}) {
    Fx fx(rc);
    auto ptxn = fx.db.txn().BeginParallel({0, 1, 2});
    ASSERT_TRUE(ptxn.ok());
    ASSERT_TRUE(
        fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
    ASSERT_TRUE(
        fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
    ASSERT_TRUE(
        fx.db.txn().Update((*ptxn)->branch(2), fx.table[2], Value(3)).ok());
    // An unrelated single-node transaction on a survivor must be isolated.
    Transaction* solo = fx.db.txn().Begin(4);
    ASSERT_TRUE(fx.db.txn().Update(solo, fx.table[8], Value(9)).ok());

    auto outcome = fx.db.Crash({1});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    // All three branches annulled: the crashed one plus two siblings.
    EXPECT_EQ(outcome->annulled.size(), 3u) << rc.Name();
    EXPECT_TRUE(outcome->forced_aborts.empty()) << rc.Name();
    EXPECT_TRUE(fx.checker.VerifyAll().ok())
        << rc.Name() << ": " << fx.checker.VerifyAll().ToString();
    // Every branch's update is gone.
    for (int i = 0; i < 3; ++i) {
      auto slot = fx.db.records().SnoopSlot(fx.table[i]);
      ASSERT_TRUE(slot.ok());
      EXPECT_EQ(slot->data, Value(0)) << rc.Name() << " branch " << i;
    }
    // The solo transaction survived and can commit.
    auto slot = fx.db.records().SnoopSlot(fx.table[8]);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(9)) << rc.Name();
    EXPECT_TRUE(fx.db.txn().Commit(solo).ok()) << rc.Name();
  }
}

TEST(ParallelTxnTest, NonParticipantCrashLeavesTransactionRunning) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
  auto outcome = fx.db.Crash({5});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->annulled.size(), 0u);
  EXPECT_EQ(outcome->preserved.size(), 2u);
  ASSERT_TRUE(fx.db.txn().CommitParallel(*ptxn).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(ParallelTxnTest, CommittedParallelTxnSurvivesParticipantCrash) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
  ASSERT_TRUE(fx.db.txn().CommitParallel(*ptxn).ok());
  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
  auto s0 = fx.db.records().SnoopSlot(fx.table[0]);
  auto s1 = fx.db.records().SnoopSlot(fx.table[1]);
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s0->data, Value(1));
  EXPECT_EQ(s1->data, Value(2));
}

TEST(ParallelTxnTest, BranchesShareLocksCorrectly) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  // A different transaction blocks on the branch's lock (2PL across the
  // group: branch locks are held until the group finishes).
  Transaction* other = fx.db.txn().Begin(3);
  EXPECT_TRUE(fx.db.txn().Update(other, fx.table[0], Value(7)).IsBusy());
  ASSERT_TRUE(fx.db.txn().CommitParallel(*ptxn).ok());
  auto poll = fx.db.txn().PollLock(other, RecordLockName(fx.table[0]),
                                   LockMode::kExclusive);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(*poll, LockResult::kGranted);
  ASSERT_TRUE(fx.db.txn().Update(other, fx.table[0], Value(7)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(other).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

// Randomized: a soup of parallel and single-node transactions, random
// commits/aborts, then a crash; the oracle verifies IFA plus all-or-
// nothing annulment of every group touched by the crash.
TEST(ParallelTxnTest, RandomizedParallelCrash) {
  Rng rng(0xFA11);
  for (int round = 0; round < 8; ++round) {
    Fx fx;
    std::vector<ParallelTxn*> open_parallel;
    std::vector<Transaction*> open_solo;
    uint16_t next_record = 0;
    auto fresh_record = [&]() {
      return fx.table[next_record++ % fx.table.size()];
    };

    for (int i = 0; i < 10; ++i) {
      if (rng.Bernoulli(0.5)) {
        // Parallel transaction over 2-3 random distinct nodes.
        std::vector<NodeId> nodes;
        NodeId first = static_cast<NodeId>(rng.Uniform(6));
        nodes.push_back(first);
        nodes.push_back(static_cast<NodeId>((first + 1 + rng.Uniform(5)) % 6));
        if (rng.Bernoulli(0.5)) {
          nodes.push_back(static_cast<NodeId>((nodes[1] + 1) % 6));
          if (nodes[2] == nodes[0]) nodes.pop_back();
        }
        auto p = fx.db.txn().BeginParallel(nodes);
        ASSERT_TRUE(p.ok());
        for (Transaction* b : (*p)->branches) {
          ASSERT_TRUE(fx.db.txn()
                          .Update(b, fresh_record(),
                                  Value(uint8_t(rng.Next() | 1)))
                          .ok());
        }
        double roll = rng.NextDouble();
        if (roll < 0.3) {
          ASSERT_TRUE(fx.db.txn().CommitParallel(*p).ok());
        } else if (roll < 0.5) {
          ASSERT_TRUE(fx.db.txn().AbortParallel(*p).ok());
        } else {
          open_parallel.push_back(*p);
        }
      } else {
        Transaction* t =
            fx.db.txn().Begin(static_cast<NodeId>(rng.Uniform(6)));
        ASSERT_TRUE(fx.db.txn()
                        .Update(t, fresh_record(),
                                Value(uint8_t(rng.Next() | 1)))
                        .ok());
        if (rng.Bernoulli(0.4)) {
          ASSERT_TRUE(fx.db.txn().Commit(t).ok());
        } else {
          open_solo.push_back(t);
        }
      }
    }

    NodeId victim = static_cast<NodeId>(rng.Uniform(6));
    auto outcome = fx.db.Crash({victim});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(fx.checker.VerifyAll().ok())
        << "round " << round << ": " << fx.checker.VerifyAll().ToString();

    // All-or-nothing per group: every open parallel transaction with a
    // branch on the victim is fully aborted; others are fully active.
    for (ParallelTxn* p : open_parallel) {
      bool touched = p->branch(victim) != nullptr;
      for (Transaction* b : p->branches) {
        if (touched) {
          EXPECT_EQ(b->state, TxnState::kAborted) << "round " << round;
        } else {
          EXPECT_EQ(b->state, TxnState::kActive) << "round " << round;
        }
      }
      if (!touched) {
        ASSERT_TRUE(fx.db.txn().CommitParallel(p).ok());
      }
    }
    for (Transaction* t : open_solo) {
      if (t->state == TxnState::kActive) {
        ASSERT_TRUE(fx.db.txn().Commit(t).ok());
      } else {
        EXPECT_EQ(t->node(), victim);
      }
    }
    EXPECT_TRUE(fx.checker.VerifyAll().ok())
        << fx.checker.VerifyAll().ToString();
  }
}

TEST(ParallelTxnTest, BeginParallelRejectsDeadNode) {
  Fx fx;
  fx.db.machine().CrashNode(3);
  auto ptxn = fx.db.txn().BeginParallel({0, 3});
  EXPECT_FALSE(ptxn.ok());
  EXPECT_TRUE(ptxn.status().IsNodeFailed());
}

}  // namespace
}  // namespace smdb
