// Tests for parallel (multi-node) transactions — the section 9 extension:
// one logical transaction with branches on several nodes, committed and
// aborted as a group; the crash of any participant node annuls the whole
// transaction, while independent transactions remain isolated.

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/recovery_manager.h"
#include "lockmgr/lock_table.h"

namespace smdb {
namespace {

std::vector<uint8_t> Value(uint8_t fill) {
  return std::vector<uint8_t>(22, fill);
}

struct Fx {
  explicit Fx(RecoveryConfig rc = RecoveryConfig::VolatileSelectiveRedo(),
              size_t num_records = 64)
      : db(MakeCfg(rc)), checker(&db) {
    db.txn().AddObserver(&checker);
    auto t = db.CreateTable(num_records);
    EXPECT_TRUE(t.ok());
    table = *t;
    checker.RegisterTable(table);
    EXPECT_TRUE(db.Checkpoint(0).ok());
  }
  static DatabaseConfig MakeCfg(RecoveryConfig rc) {
    DatabaseConfig c;
    c.machine.num_nodes = 6;
    c.recovery = rc;
    // Small pages (header + 3 record lines = 12 records) spread the table
    // across several heap pages, so the worker-stepped-branch tests below
    // can build page-disjoint footprints. The group semantics tests are
    // geometry-agnostic.
    c.page_size = 512;
    return c;
  }
  Database db;
  IfaChecker checker;
  std::vector<RecordId> table;
};

TEST(ParallelTxnTest, GroupCommitAppliesAllBranches) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1, 2});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(2), fx.table[2], Value(3)).ok());
  ASSERT_TRUE(fx.db.txn().CommitParallel(*ptxn).ok());
  for (int i = 0; i < 3; ++i) {
    auto slot = fx.db.records().SnoopSlot(fx.table[i]);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(uint8_t(i + 1)));
  }
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(ParallelTxnTest, GroupAbortRollsBackAllBranches) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
  ASSERT_TRUE(fx.db.txn().AbortParallel(*ptxn).ok());
  for (int i = 0; i < 2; ++i) {
    auto slot = fx.db.records().SnoopSlot(fx.table[i]);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(0));
  }
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(ParallelTxnTest, ParticipantCrashAbortsWholeTransaction) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::VolatileRedoAll()}) {
    Fx fx(rc);
    auto ptxn = fx.db.txn().BeginParallel({0, 1, 2});
    ASSERT_TRUE(ptxn.ok());
    ASSERT_TRUE(
        fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
    ASSERT_TRUE(
        fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
    ASSERT_TRUE(
        fx.db.txn().Update((*ptxn)->branch(2), fx.table[2], Value(3)).ok());
    // An unrelated single-node transaction on a survivor must be isolated.
    Transaction* solo = fx.db.txn().Begin(4);
    ASSERT_TRUE(fx.db.txn().Update(solo, fx.table[8], Value(9)).ok());

    auto outcome = fx.db.Crash({1});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    // All three branches annulled: the crashed one plus two siblings.
    EXPECT_EQ(outcome->annulled.size(), 3u) << rc.Name();
    EXPECT_TRUE(outcome->forced_aborts.empty()) << rc.Name();
    EXPECT_TRUE(fx.checker.VerifyAll().ok())
        << rc.Name() << ": " << fx.checker.VerifyAll().ToString();
    // Every branch's update is gone.
    for (int i = 0; i < 3; ++i) {
      auto slot = fx.db.records().SnoopSlot(fx.table[i]);
      ASSERT_TRUE(slot.ok());
      EXPECT_EQ(slot->data, Value(0)) << rc.Name() << " branch " << i;
    }
    // The solo transaction survived and can commit.
    auto slot = fx.db.records().SnoopSlot(fx.table[8]);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(9)) << rc.Name();
    EXPECT_TRUE(fx.db.txn().Commit(solo).ok()) << rc.Name();
  }
}

TEST(ParallelTxnTest, NonParticipantCrashLeavesTransactionRunning) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
  auto outcome = fx.db.Crash({5});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->annulled.size(), 0u);
  EXPECT_EQ(outcome->preserved.size(), 2u);
  ASSERT_TRUE(fx.db.txn().CommitParallel(*ptxn).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(ParallelTxnTest, CommittedParallelTxnSurvivesParticipantCrash) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(1), fx.table[1], Value(2)).ok());
  ASSERT_TRUE(fx.db.txn().CommitParallel(*ptxn).ok());
  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
  auto s0 = fx.db.records().SnoopSlot(fx.table[0]);
  auto s1 = fx.db.records().SnoopSlot(fx.table[1]);
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s0->data, Value(1));
  EXPECT_EQ(s1->data, Value(2));
}

TEST(ParallelTxnTest, BranchesShareLocksCorrectly) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1});
  ASSERT_TRUE(ptxn.ok());
  ASSERT_TRUE(
      fx.db.txn().Update((*ptxn)->branch(0), fx.table[0], Value(1)).ok());
  // A different transaction blocks on the branch's lock (2PL across the
  // group: branch locks are held until the group finishes).
  Transaction* other = fx.db.txn().Begin(3);
  EXPECT_TRUE(fx.db.txn().Update(other, fx.table[0], Value(7)).IsBusy());
  ASSERT_TRUE(fx.db.txn().CommitParallel(*ptxn).ok());
  auto poll = fx.db.txn().PollLock(other, RecordLockName(fx.table[0]),
                                   LockMode::kExclusive);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(*poll, LockResult::kGranted);
  ASSERT_TRUE(fx.db.txn().Update(other, fx.table[0], Value(7)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(other).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

// Randomized: a soup of parallel and single-node transactions, random
// commits/aborts, then a crash; the oracle verifies IFA plus all-or-
// nothing annulment of every group touched by the crash.
TEST(ParallelTxnTest, RandomizedParallelCrash) {
  Rng rng(0xFA11);
  for (int round = 0; round < 8; ++round) {
    Fx fx;
    std::vector<ParallelTxn*> open_parallel;
    std::vector<Transaction*> open_solo;
    uint16_t next_record = 0;
    auto fresh_record = [&]() {
      return fx.table[next_record++ % fx.table.size()];
    };

    for (int i = 0; i < 10; ++i) {
      if (rng.Bernoulli(0.5)) {
        // Parallel transaction over 2-3 random distinct nodes.
        std::vector<NodeId> nodes;
        NodeId first = static_cast<NodeId>(rng.Uniform(6));
        nodes.push_back(first);
        nodes.push_back(static_cast<NodeId>((first + 1 + rng.Uniform(5)) % 6));
        if (rng.Bernoulli(0.5)) {
          nodes.push_back(static_cast<NodeId>((nodes[1] + 1) % 6));
          if (nodes[2] == nodes[0]) nodes.pop_back();
        }
        auto p = fx.db.txn().BeginParallel(nodes);
        ASSERT_TRUE(p.ok());
        for (Transaction* b : (*p)->branches) {
          ASSERT_TRUE(fx.db.txn()
                          .Update(b, fresh_record(),
                                  Value(uint8_t(rng.Next() | 1)))
                          .ok());
        }
        double roll = rng.NextDouble();
        if (roll < 0.3) {
          ASSERT_TRUE(fx.db.txn().CommitParallel(*p).ok());
        } else if (roll < 0.5) {
          ASSERT_TRUE(fx.db.txn().AbortParallel(*p).ok());
        } else {
          open_parallel.push_back(*p);
        }
      } else {
        Transaction* t =
            fx.db.txn().Begin(static_cast<NodeId>(rng.Uniform(6)));
        ASSERT_TRUE(fx.db.txn()
                        .Update(t, fresh_record(),
                                Value(uint8_t(rng.Next() | 1)))
                        .ok());
        if (rng.Bernoulli(0.4)) {
          ASSERT_TRUE(fx.db.txn().Commit(t).ok());
        } else {
          open_solo.push_back(t);
        }
      }
    }

    NodeId victim = static_cast<NodeId>(rng.Uniform(6));
    auto outcome = fx.db.Crash({victim});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(fx.checker.VerifyAll().ok())
        << "round " << round << ": " << fx.checker.VerifyAll().ToString();

    // All-or-nothing per group: every open parallel transaction with a
    // branch on the victim is fully aborted; others are fully active.
    for (ParallelTxn* p : open_parallel) {
      bool touched = p->branch(victim) != nullptr;
      for (Transaction* b : p->branches) {
        if (touched) {
          EXPECT_EQ(b->state, TxnState::kAborted) << "round " << round;
        } else {
          EXPECT_EQ(b->state, TxnState::kActive) << "round " << round;
        }
      }
      if (!touched) {
        ASSERT_TRUE(fx.db.txn().CommitParallel(p).ok());
      }
    }
    for (Transaction* t : open_solo) {
      if (t->state == TxnState::kActive) {
        ASSERT_TRUE(fx.db.txn().Commit(t).ok());
      } else {
        EXPECT_EQ(t->node(), victim);
      }
    }
    EXPECT_TRUE(fx.checker.VerifyAll().ok())
        << fx.checker.VerifyAll().ToString();
  }
}

// --- Worker-stepped branches -------------------------------------------
//
// The simulator's concurrency contract is the sharded executor's: steps
// may run on different host threads only when their machine footprints
// (lock-table lines, record slot line, page header line) are pairwise
// disjoint — there is no internal per-line latching to fall back on. The
// helpers below replicate the executor's plan/admit cycle for hand-driven
// ParallelTxn branches, so these tests exercise real concurrent branch
// traffic under the same discipline RunBatches enforces.

struct BranchStep {
  Transaction* txn = nullptr;
  RecordId rid;
  std::vector<uint8_t> value;
};

// Footprint of one Update as the ThreadPool-backed executor plans it.
// nullopt = the acquisition would queue or abort: not admissible.
std::optional<std::vector<LineAddr>> PlanUpdateLines(TxnManager& tm,
                                                     const BranchStep& s) {
  LockPrediction pred = tm.locks()->Predict(
      s.txn->id, RecordLockName(s.rid), LockMode::kExclusive);
  if (pred.outcome != LockPrediction::Outcome::kGranted &&
      pred.outcome != LockPrediction::Outcome::kHeld) {
    return std::nullopt;
  }
  std::vector<LineAddr> lines = std::move(pred.lines);
  lines.push_back(tm.records()->SlotLine(s.rid));
  lines.push_back(tm.records()->HeaderLine(s.rid.page));
  return lines;
}

// Runs the queues in lockstep rounds: each round plans every queue's next
// step serially, dispatches a pairwise-line-disjoint subset to the pool
// (USN source armed for atomic draws, as for an unranked batch miss), and
// steps the rest on this thread. Returns how many steps ran concurrently
// with at least one other.
Result<uint64_t> RunStepsSharded(TxnManager& tm, ThreadPool& pool,
                                 std::vector<std::vector<BranchStep>> queues) {
  uint64_t concurrent = 0;
  std::vector<size_t> next(queues.size(), 0);
  for (;;) {
    std::vector<size_t> ready;
    for (size_t q = 0; q < queues.size(); ++q) {
      if (next[q] < queues[q].size()) ready.push_back(q);
    }
    if (ready.empty()) return concurrent;
    std::vector<size_t> batch;
    std::vector<size_t> solo;
    std::set<LineAddr> used;
    for (size_t q : ready) {
      auto lines = PlanUpdateLines(tm, queues[q][next[q]]);
      bool disjoint = lines.has_value();
      if (disjoint) {
        for (LineAddr l : *lines) {
          if (used.contains(l)) {
            disjoint = false;
            break;
          }
        }
      }
      if (disjoint) {
        used.insert(lines->begin(), lines->end());
        batch.push_back(q);
      } else {
        solo.push_back(q);
      }
    }
    if (batch.size() < 2) {
      solo.insert(solo.end(), batch.begin(), batch.end());
      batch.clear();
    }
    std::vector<Status> st(batch.size());
    if (!batch.empty()) {
      tm.usn()->BeginRankedBatch(0);
      pool.ParallelFor(batch.size(), [&](size_t i) {
        const BranchStep& s = queues[batch[i]][next[batch[i]]];
        st[i] = tm.Update(s.txn, s.rid, s.value);
      });
      tm.usn()->EndRankedBatch();
      concurrent += batch.size();
    }
    for (const Status& s : st) SMDB_RETURN_IF_ERROR(s);
    for (size_t q : solo) {
      const BranchStep& s = queues[q][next[q]];
      SMDB_RETURN_IF_ERROR(tm.Update(s.txn, s.rid, s.value));
    }
    for (size_t q : ready) ++next[q];
  }
}

// Sharded execution: a group's branches step on different worker threads,
// exactly as the ThreadPool-backed executor would drive them. Each branch
// updates its own disjoint record slice; rounds that pass the footprint
// check run on the pool, the rest serially. Run under TSan this pins the
// txn-layer latching (striped lock table, per-node WAL, shared txn table)
// for concurrent branch traffic.
TEST(ParallelTxnTest, BranchesStepOnWorkerThreads) {
  Fx fx;
  constexpr size_t kBranches = 4;
  constexpr size_t kOpsPerBranch = 6;
  auto ptxn = fx.db.txn().BeginParallel({0, 1, 2, 3});
  ASSERT_TRUE(ptxn.ok());
  ThreadPool pool(kBranches);
  std::vector<std::vector<BranchStep>> queues(kBranches);
  for (size_t b = 0; b < kBranches; ++b) {
    Transaction* br = (*ptxn)->branch(static_cast<NodeId>(b));
    for (size_t i = 0; i < kOpsPerBranch; ++i) {
      // Branch b works its own heap page (12 records per 512-byte page):
      // a round's four steps touch four distinct pages.
      queues[b].push_back({br, fx.table[b * 12 + i],
                           Value(uint8_t(16 * b + i + 1))});
    }
  }
  auto concurrent =
      RunStepsSharded(fx.db.txn(), pool, std::move(queues));
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();
  EXPECT_GT(*concurrent, 0u)
      << "no round ever admitted two branch steps concurrently — the "
         "footprint partition degenerated to fully serial";
  ASSERT_TRUE(fx.db.txn().CommitParallel(*ptxn).ok());
  for (size_t b = 0; b < kBranches; ++b) {
    for (size_t i = 0; i < kOpsPerBranch; ++i) {
      auto slot = fx.db.records().SnoopSlot(fx.table[b * 12 + i]);
      ASSERT_TRUE(slot.ok());
      EXPECT_EQ(slot->data, Value(uint8_t(16 * b + i + 1)))
          << "branch " << b << " op " << i;
    }
  }
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

// Concurrently-stepped branches plus a participant crash: all the work the
// workers raced to do must be annulled as one group, while a solo
// transaction stepped on another worker survives untouched.
TEST(ParallelTxnTest, WorkerSteppedBranchesAnnulAsOneGroupOnCrash) {
  Fx fx;
  auto ptxn = fx.db.txn().BeginParallel({0, 1, 2});
  ASSERT_TRUE(ptxn.ok());
  Transaction* solo = fx.db.txn().Begin(4);
  ThreadPool pool(4);
  std::vector<std::vector<BranchStep>> queues(4);
  for (size_t b = 0; b < 3; ++b) {
    Transaction* br = (*ptxn)->branch(static_cast<NodeId>(b));
    for (size_t i = 0; i < 4; ++i) {
      queues[b].push_back({br, fx.table[b * 12 + i], Value(uint8_t(b + 1))});
    }
  }
  queues[3].push_back({solo, fx.table[40], Value(0x55)});
  auto concurrent = RunStepsSharded(fx.db.txn(), pool, std::move(queues));
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();

  auto outcome = fx.db.Crash({2});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->annulled.size(), 3u);
  EXPECT_TRUE(outcome->forced_aborts.empty());
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  for (size_t b = 0; b < 3; ++b) {
    for (size_t i = 0; i < 4; ++i) {
      auto slot = fx.db.records().SnoopSlot(fx.table[b * 12 + i]);
      ASSERT_TRUE(slot.ok());
      EXPECT_EQ(slot->data, Value(0)) << "branch " << b << " op " << i;
    }
  }
  EXPECT_EQ(solo->state, TxnState::kActive);
  ASSERT_TRUE(fx.db.txn().Commit(solo).ok());
  auto slot = fx.db.records().SnoopSlot(fx.table[40]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0x55));
}

// Several groups step concurrently on disjoint record slices — the
// worker-thread analogue of RandomizedParallelCrash's soup, pinning that
// group bookkeeping (branch registration, group commit ordering) keeps no
// hidden serial assumption.
TEST(ParallelTxnTest, ConcurrentGroupsOnDisjointRecordsCommit) {
  Fx fx;
  constexpr size_t kGroups = 3;
  std::vector<ParallelTxn*> groups;
  for (size_t g = 0; g < kGroups; ++g) {
    auto p = fx.db.txn().BeginParallel(
        {static_cast<NodeId>(2 * g), static_cast<NodeId>(2 * g + 1)});
    ASSERT_TRUE(p.ok());
    groups.push_back(*p);
  }
  // 6 branch queues across 3 groups; each branch owns its own heap page so
  // rounds of steps have pairwise-disjoint line footprints.
  ThreadPool pool(6);
  std::vector<std::vector<BranchStep>> queues(2 * kGroups);
  for (size_t t = 0; t < 2 * kGroups; ++t) {
    Transaction* br = groups[t / 2]->branches[t % 2];
    for (size_t i = 0; i < 4; ++i) {
      queues[t].push_back({br, fx.table[t * 12 + i], Value(uint8_t(t + 1))});
    }
  }
  auto concurrent = RunStepsSharded(fx.db.txn(), pool, std::move(queues));
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();
  for (size_t g = 0; g < kGroups; ++g) {
    ASSERT_TRUE(fx.db.txn().CommitParallel(groups[g]).ok()) << "group " << g;
  }
  for (size_t t = 0; t < 2 * kGroups; ++t) {
    for (size_t i = 0; i < 4; ++i) {
      auto slot = fx.db.records().SnoopSlot(fx.table[t * 12 + i]);
      ASSERT_TRUE(slot.ok());
      EXPECT_EQ(slot->data, Value(uint8_t(t + 1))) << "task " << t;
    }
  }
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(ParallelTxnTest, BeginParallelRejectsDeadNode) {
  Fx fx;
  fx.db.machine().CrashNode(3);
  auto ptxn = fx.db.txn().BeginParallel({0, 3});
  EXPECT_FALSE(ptxn.ok());
  EXPECT_TRUE(ptxn.status().IsNodeFailed());
}

}  // namespace
}  // namespace smdb
