// Regression and edge-case tests for restart recovery: scenarios distilled
// from subtle interactions found during development, each encoding an
// invariant the protocols must uphold.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/recovery_manager.h"
#include "workload/harness.h"

namespace smdb {
namespace {

std::vector<uint8_t> Value(uint8_t fill) {
  return std::vector<uint8_t>(22, fill);
}

struct Fx {
  explicit Fx(RecoveryConfig rc, uint16_t nodes = 4,
              bool two_line_lcb = false)
      : db(MakeCfg(rc, nodes, two_line_lcb)), checker(&db) {
    db.txn().AddObserver(&checker);
    auto t = db.CreateTable(16);
    EXPECT_TRUE(t.ok());
    table = *t;
    checker.RegisterTable(table);
    EXPECT_TRUE(db.Checkpoint(0).ok());
  }
  static DatabaseConfig MakeCfg(RecoveryConfig rc, uint16_t nodes,
                                bool two_line_lcb) {
    DatabaseConfig c;
    c.machine.num_nodes = nodes;
    c.recovery = rc;
    c.lock_table.two_line_lcb = two_line_lcb;
    return c;
  }
  Database db;
  IfaChecker checker;
  std::vector<RecordId> table;
};

// A transaction that aborted *before* the crash, with its update stolen to
// the stable database but its CLRs (and abort record) forced as well, must
// NOT be re-undone: a later committed value would be clobbered by the
// stale before image. (Regression: stable-log undo originally keyed only
// on commit records.)
TEST(RecoveryEdgeTest, PreCrashAbortWithStableClrsNotReundone) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::VolatileRedoAll()}) {
    Fx fx(rc);
    RecordId r = fx.table[0];
    // t1 on node 1 updates r, the page is stolen, then t1 aborts (CLR) and
    // the log is forced (e.g. by a later commit on node 1).
    Transaction* t1 = fx.db.txn().Begin(1);
    ASSERT_TRUE(fx.db.txn().Update(t1, r, Value(0x11)).ok());
    ASSERT_TRUE(fx.db.buffers().FlushPage(2, r.page).ok());
    ASSERT_TRUE(fx.db.txn().Abort(t1).ok());
    ASSERT_TRUE(fx.db.log().Force(1, 1).ok());
    // t2 on node 1 commits a new value for r.
    Transaction* t2 = fx.db.txn().Begin(1);
    ASSERT_TRUE(fx.db.txn().Update(t2, r, Value(0x22)).ok());
    ASSERT_TRUE(fx.db.txn().Commit(t2).ok());
    // Crash node 1: t2's committed value must survive (redo), t1 must not
    // be undone again.
    auto outcome = fx.db.Crash({1});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(fx.checker.VerifyAll().ok())
        << rc.Name() << ": " << fx.checker.VerifyAll().ToString();
    auto slot = fx.db.records().SnoopSlot(r);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(0x22)) << rc.Name();
  }
}

// A pre-crash abort whose CLRs stayed volatile (lost with the node) while
// the original update was stolen: recovery must undo from the stable log.
TEST(RecoveryEdgeTest, PreCrashAbortWithVolatileClrsIsUndone) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::VolatileRedoAll()}) {
    Fx fx(rc);
    RecordId r = fx.table[0];
    Transaction* t1 = fx.db.txn().Begin(1);
    ASSERT_TRUE(fx.db.txn().Update(t1, r, Value(0x33)).ok());
    ASSERT_TRUE(fx.db.buffers().FlushPage(2, r.page).ok());  // steals 0x33
    ASSERT_TRUE(fx.db.txn().Abort(t1).ok());  // CLR volatile only
    auto outcome = fx.db.Crash({1});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(fx.checker.VerifyAll().ok())
        << rc.Name() << ": " << fx.checker.VerifyAll().ToString();
    auto slot = fx.db.records().SnoopSlot(r);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(0)) << rc.Name();
  }
}

// Cross-node index replay ordering: an insert on (what becomes) a crashed
// node followed by a committed delete on a survivor. Replay must not
// resurrect the key regardless of per-node log order. (Regression: redo of
// a delete for a missing entry was dropped before global USN ordering.)
TEST(RecoveryEdgeTest, CrossNodeInsertThenDeleteReplay) {
  for (auto rc : {RecoveryConfig::VolatileRedoAll(),
                  RecoveryConfig::VolatileSelectiveRedo()}) {
    Fx fx(rc);
    Transaction* ti = fx.db.txn().Begin(2);
    ASSERT_TRUE(fx.db.txn().IndexInsert(ti, 66, fx.table[0]).ok());
    ASSERT_TRUE(fx.db.txn().Commit(ti).ok());
    Transaction* td = fx.db.txn().Begin(1);
    ASSERT_TRUE(fx.db.txn().IndexDelete(td, 66).ok());
    ASSERT_TRUE(fx.db.txn().Commit(td).ok());
    auto outcome = fx.db.Crash({2});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(fx.checker.VerifyAll().ok())
        << rc.Name() << ": " << fx.checker.VerifyAll().ToString();
    auto l = fx.db.index().Lookup(0, 66);
    ASSERT_TRUE(l.ok());
    EXPECT_FALSE(l->has_value()) << rc.Name() << ": key resurrected";
  }
}

// Same-transaction multi-update chains must unwind fully during recovery
// undo (the engagement rule's same-txn case).
TEST(RecoveryEdgeTest, MultiUpdateChainUndo) {
  Fx fx(RecoveryConfig::VolatileSelectiveRedo());
  RecordId r = fx.table[0];
  Transaction* setup = fx.db.txn().Begin(3);
  ASSERT_TRUE(fx.db.txn().Update(setup, r, Value(0x10)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(setup).ok());

  Transaction* t = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t, r, Value(0x21)).ok());
  ASSERT_TRUE(fx.db.buffers().FlushPage(2, r.page).ok());  // steal v1
  ASSERT_TRUE(fx.db.txn().Update(t, r, Value(0x22)).ok());
  ASSERT_TRUE(fx.db.buffers().FlushPage(2, r.page).ok());  // steal v2
  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  auto slot = fx.db.records().SnoopSlot(r);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0x10));
}

// Two-line LCBs: a crash can destroy one of the two lines ("arbitrary
// segments"); the restart procedure rebuilds the whole LCB from surviving
// logs (section 4.2.2's harder scenario).
TEST(RecoveryEdgeTest, TwoLineLcbPartialLossRebuilt) {
  Fx fx(RecoveryConfig::VolatileSelectiveRedo(), 4, /*two_line_lcb=*/true);
  Transaction* t0 = fx.db.txn().Begin(0);
  Transaction* t1 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Read(t0, fx.table[5]).ok());
  ASSERT_TRUE(fx.db.txn().Read(t1, fx.table[5]).ok());
  // t2 queues an X request behind the two S holders.
  Transaction* t2 = fx.db.txn().Begin(2);
  ASSERT_TRUE(fx.db.txn().Update(t2, fx.table[5], Value(1)).IsBusy());

  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  uint64_t name = RecordLockName(fx.table[5]);
  auto lcb = fx.db.locks().GetLcb(0, name);
  ASSERT_TRUE(lcb.ok());
  // Survivor t0 still holds S; t2 still waits; crashed t1 is gone.
  ASSERT_EQ(lcb->holders.size(), 1u);
  EXPECT_EQ(lcb->holders[0].txn, t0->id);
  ASSERT_EQ(lcb->waiters.size(), 1u);
  EXPECT_EQ(lcb->waiters[0].txn, t2->id);
  // Once t0 finishes, t2 gets the lock.
  ASSERT_TRUE(fx.db.txn().Commit(t0).ok());
  auto poll = fx.db.txn().PollLock(t2, name, LockMode::kExclusive);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(*poll, LockResult::kGranted);
}

// The early-commit ablation: with structural early commit disabled, a
// crash that destroys a freshly split leaf loses committed index entries —
// the dependency the paper's rule exists to prevent. The test documents
// the violation (the checker must catch it).
TEST(RecoveryEdgeTest, NoEarlyCommitLosesSplitStructure) {
  RecoveryConfig rc = RecoveryConfig::VolatileSelectiveRedo();
  rc.early_commit_structural = false;
  DatabaseConfig cfg;
  cfg.machine.num_nodes = 4;
  cfg.recovery = rc;
  Database db(cfg);
  IfaChecker checker(&db);
  db.txn().AddObserver(&checker);
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  checker.RegisterTable(*table);
  ASSERT_TRUE(db.Checkpoint(0).ok());

  // Node 2 inserts enough committed keys to split the root leaf. Without
  // early commit the split stays volatile.
  for (int batch = 0; batch < 5; ++batch) {
    Transaction* t = db.txn().Begin(2);
    for (uint64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          db.txn().IndexInsert(t, batch * 40 + i + 1, (*table)[0]).ok());
    }
    ASSERT_TRUE(db.txn().Commit(t).ok());
  }
  ASSERT_GT(db.index().stats().splits, 0u);
  ASSERT_EQ(db.index().stats().early_commits, 0u);

  // Crash the node that performed the splits: the moved entries' only
  // up-to-date homes die with it. The damage shows up either as a recovery
  // failure (the reloaded pre-split structure is unusable) or as an index
  // verification failure — both are the IFA violation the early-commit
  // rule prevents.
  auto outcome = db.Crash({2});
  bool violated = !outcome.ok() || !checker.VerifyIndex().ok();
  EXPECT_TRUE(violated)
      << "expected an IFA violation with early commit disabled";
}

// With early commit enabled the identical scenario is safe.
TEST(RecoveryEdgeTest, EarlyCommitPreservesSplitStructure) {
  Fx fx(RecoveryConfig::VolatileSelectiveRedo());
  for (int batch = 0; batch < 5; ++batch) {
    Transaction* t = fx.db.txn().Begin(2);
    for (uint64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          fx.db.txn().IndexInsert(t, batch * 40 + i + 1, fx.table[0]).ok());
    }
    ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  }
  ASSERT_GT(fx.db.index().stats().splits, 0u);
  auto outcome = fx.db.Crash({2});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  NodeId probe = fx.db.machine().AliveNodes()[0];
  EXPECT_TRUE(fx.db.index().CheckStructure(probe).ok());
}

// The WAL gate must refuse to flush a page whose covering log records died
// with a crashed node (flushing would persist unrecoverable state).
TEST(RecoveryEdgeTest, WalGateBlocksFlushAfterUpdaterCrash) {
  // Use a no-IFA config so the crash leaves state unrecovered: we crash a
  // node *without* running recovery by driving the machine directly.
  DatabaseConfig cfg;
  cfg.machine.num_nodes = 4;
  cfg.recovery = RecoveryConfig::VolatileSelectiveRedo();
  Database db(cfg);
  auto table = db.CreateTable(8);
  ASSERT_TRUE(table.ok());
  Transaction* t = db.txn().Begin(1);
  ASSERT_TRUE(db.txn().Update(t, (*table)[0],
                              std::vector<uint8_t>(22, 9)).ok());
  // Crash node 1 at the machine level only (no recovery): its unforced
  // update record is gone. The flush must fail — either because the WAL
  // gate cannot be satisfied or because the page's current contents are no
  // longer reachable (the sole copy died with the node). Either way,
  // unrecoverable uncommitted state never reaches the stable database.
  db.machine().CrashNode(1);
  Status s = db.buffers().FlushPage(0, (*table)[0].page);
  EXPECT_FALSE(s.ok()) << s.ToString();
  EXPECT_TRUE(s.IsNodeFailed() || s.IsLineLost()) << s.ToString();
}

// Checkpoints bound the replay: records before the checkpoint are not
// re-applied (their effects are in the stable database).
TEST(RecoveryEdgeTest, CheckpointBoundsReplay) {
  Fx fx(RecoveryConfig::VolatileRedoAll());
  // 10 committed updates, then a checkpoint, then 2 more.
  for (int i = 0; i < 10; ++i) {
    Transaction* t = fx.db.txn().Begin(1);
    ASSERT_TRUE(fx.db.txn().Update(t, fx.table[i], Value(uint8_t(i))).ok());
    ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  }
  ASSERT_TRUE(fx.db.Checkpoint(0).ok());
  for (int i = 10; i < 12; ++i) {
    Transaction* t = fx.db.txn().Begin(1);
    ASSERT_TRUE(fx.db.txn().Update(t, fx.table[i], Value(uint8_t(i))).ok());
    ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  }
  auto outcome = fx.db.Crash({3});
  ASSERT_TRUE(outcome.ok());
  // Only the two post-checkpoint updates were candidates for redo.
  EXPECT_LE(outcome->redo_applied + outcome->redo_skipped, 8u)
      << outcome->ToString();
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

// A transaction deleting its *own* uncommitted insert leaves nothing for
// annulment to resurrect (regression: unmarking such a tombstone would
// re-create a never-committed entry).
TEST(RecoveryEdgeTest, DeleteOfOwnInsertAnnulsToNothing) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::VolatileRedoAll()}) {
    Fx fx(rc);
    Transaction* t = fx.db.txn().Begin(1);
    ASSERT_TRUE(fx.db.txn().IndexInsert(t, 77, fx.table[0]).ok());
    ASSERT_TRUE(fx.db.txn().IndexDelete(t, 77).ok());
    // Migrate the leaf line to a survivor so the state physically outlives
    // the crash.
    Transaction* other = fx.db.txn().Begin(2);
    ASSERT_TRUE(fx.db.txn().IndexInsert(other, 78, fx.table[1]).ok());
    auto outcome = fx.db.Crash({1});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(fx.checker.VerifyAll().ok())
        << rc.Name() << ": " << fx.checker.VerifyAll().ToString();
    auto l = fx.db.index().Lookup(2, 77);
    ASSERT_TRUE(l.ok());
    EXPECT_FALSE(l->has_value()) << rc.Name() << ": resurrected own insert";
    ASSERT_TRUE(fx.db.txn().Commit(other).ok());
  }
}

// A transaction deleting a committed key and re-inserting it must not
// destroy the committed before-image: annulment restores the original
// entry (regression: tombstone-slot reuse overwrote the committed rid).
TEST(RecoveryEdgeTest, ReinsertAfterDeleteAnnulsToCommitted) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::VolatileRedoAll()}) {
    Fx fx(rc);
    Transaction* setup = fx.db.txn().Begin(3);
    ASSERT_TRUE(fx.db.txn().IndexInsert(setup, 55, fx.table[4]).ok());
    ASSERT_TRUE(fx.db.txn().Commit(setup).ok());

    Transaction* t = fx.db.txn().Begin(1);
    ASSERT_TRUE(fx.db.txn().IndexDelete(t, 55).ok());
    ASSERT_TRUE(fx.db.txn().IndexInsert(t, 55, fx.table[9]).ok());
    auto before = fx.db.index().Lookup(1, 55);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(before->has_value());
    EXPECT_EQ(**before, fx.table[9]);

    auto outcome = fx.db.Crash({1});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(fx.checker.VerifyAll().ok())
        << rc.Name() << ": " << fx.checker.VerifyAll().ToString();
    auto l = fx.db.index().Lookup(2, 55);
    ASSERT_TRUE(l.ok());
    ASSERT_TRUE(l->has_value()) << rc.Name() << ": committed entry lost";
    EXPECT_EQ(**l, fx.table[4]) << rc.Name() << ": wrong rid restored";
  }
}

// The same pattern rolled back voluntarily (no crash) must also restore
// the committed entry.
TEST(RecoveryEdgeTest, ReinsertAfterDeleteVoluntaryAbort) {
  Fx fx(RecoveryConfig::VolatileSelectiveRedo());
  Transaction* setup = fx.db.txn().Begin(3);
  ASSERT_TRUE(fx.db.txn().IndexInsert(setup, 55, fx.table[4]).ok());
  ASSERT_TRUE(fx.db.txn().Commit(setup).ok());
  Transaction* t = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().IndexDelete(t, 55).ok());
  ASSERT_TRUE(fx.db.txn().IndexInsert(t, 55, fx.table[9]).ok());
  ASSERT_TRUE(fx.db.txn().Abort(t).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  auto l = fx.db.index().Lookup(2, 55);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(l->has_value());
  EXPECT_EQ(**l, fx.table[4]);
}

// And the commit of the pattern keeps the new entry (purging the residual
// committed tombstone lazily).
TEST(RecoveryEdgeTest, ReinsertAfterDeleteCommit) {
  Fx fx(RecoveryConfig::VolatileSelectiveRedo());
  Transaction* setup = fx.db.txn().Begin(3);
  ASSERT_TRUE(fx.db.txn().IndexInsert(setup, 55, fx.table[4]).ok());
  ASSERT_TRUE(fx.db.txn().Commit(setup).ok());
  Transaction* t = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().IndexDelete(t, 55).ok());
  ASSERT_TRUE(fx.db.txn().IndexInsert(t, 55, fx.table[9]).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  auto l = fx.db.index().Lookup(2, 55);
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(l->has_value());
  EXPECT_EQ(**l, fx.table[9]);
}

// Crashing every node but one still recovers (the most asymmetric case).
TEST(RecoveryEdgeTest, AllButOneCrash) {
  Fx fx(RecoveryConfig::VolatileSelectiveRedo(), 4);
  std::vector<Transaction*> txns;
  for (NodeId n = 0; n < 4; ++n) {
    Transaction* t = fx.db.txn().Begin(n);
    EXPECT_TRUE(fx.db.txn().Update(t, fx.table[n], Value(uint8_t(n + 1))).ok());
    txns.push_back(t);
  }
  auto outcome = fx.db.Crash({0, 1, 2});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->annulled.size(), 3u);
  EXPECT_EQ(outcome->preserved.size(), 1u);
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  EXPECT_TRUE(fx.db.txn().Commit(txns[3]).ok());
}

// Recovery with zero active transactions is a no-op that stays consistent.
TEST(RecoveryEdgeTest, QuiescentCrash) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::VolatileRedoAll(),
                  RecoveryConfig::BaselineRebootAll()}) {
    Fx fx(rc);
    Transaction* t = fx.db.txn().Begin(0);
    ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(7)).ok());
    ASSERT_TRUE(fx.db.txn().Commit(t).ok());
    auto outcome = fx.db.Crash({0});
    ASSERT_TRUE(outcome.ok()) << rc.Name();
    EXPECT_TRUE(outcome->annulled.empty());
    EXPECT_TRUE(fx.checker.VerifyAll().ok()) << rc.Name();
    auto slot = fx.db.records().SnoopSlot(fx.table[0]);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(slot->data, Value(7)) << rc.Name();
  }
}

// Restarted nodes rejoin cold and can run transactions again.
TEST(RecoveryEdgeTest, RestartedNodeWorks) {
  Fx fx(RecoveryConfig::VolatileSelectiveRedo());
  Transaction* t = fx.db.txn().Begin(2);
  ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(1)).ok());
  auto outcome = fx.db.Crash({2});
  ASSERT_TRUE(outcome.ok());
  fx.db.RestartNodes({2});
  ASSERT_TRUE(fx.db.machine().NodeAlive(2));
  Transaction* t2 = fx.db.txn().Begin(2);
  ASSERT_TRUE(fx.db.txn().Update(t2, fx.table[1], Value(2)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t2).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

// A second crash during the window between recovery and the next
// checkpoint must still recover (CLRs are redo-only and never undone).
TEST(RecoveryEdgeTest, BackToBackCrashes) {
  Fx fx(RecoveryConfig::VolatileSelectiveRedo(), 6);
  Transaction* t0 = fx.db.txn().Begin(0);
  Transaction* t1 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t0, fx.table[0], Value(0xA0)).ok());
  ASSERT_TRUE(fx.db.txn().Update(t1, fx.table[1], Value(0xB0)).ok());
  ASSERT_TRUE(fx.db.Crash({0}).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
  // Immediately crash another node, then the node that performed much of
  // the first recovery.
  ASSERT_TRUE(fx.db.Crash({1}).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
  ASSERT_TRUE(fx.db.Crash({2}).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
}

// Group commit: a crash after the commit record is enqueued but before any
// covering force means the transaction was never acknowledged — it must be
// annulled, and the record must keep its pre-transaction value.
TEST(RecoveryEdgeTest, GroupCommitCrashBeforeFlushAnnulsPending) {
  RecoveryConfig rc = RecoveryConfig::VolatileSelectiveRedo();
  rc.group_commit = true;
  rc.group_commit_window_ns = 10'000'000;  // far beyond the test's horizon
  rc.group_commit_max_batch = 64;
  Fx fx(rc);
  RecordId r = fx.table[0];
  Transaction* t1 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t1, r, Value(0x77)).ok());
  Status s = fx.db.txn().Commit(t1);
  ASSERT_TRUE(s.IsBusy()) << s.ToString();  // pending, unacknowledged
  EXPECT_EQ(t1->state, TxnState::kActive);
  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(t1->state, TxnState::kAborted);  // annulled, never committed
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  auto slot = fx.db.records().SnoopSlot(r);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0));  // pre-transaction value
}

// Group commit under the eager-Stable LBM: the batch mixes update records
// (LBM intents) with commit records. A size-bound flush mid-stream makes
// the earlier transaction durable; the later one is still volatile when
// the node dies. Recovery must commit the first and annul the second.
TEST(RecoveryEdgeTest, GroupCommitCrashMidBatchMixedRecords) {
  RecoveryConfig rc = RecoveryConfig::StableEagerRedoAll();
  rc.group_commit = true;
  rc.group_commit_window_ns = 10'000'000;
  // a's records (begin, lock op, update, commit) stay under the bound; b's
  // update intent pushes past it and flushes the mixed batch.
  rc.group_commit_max_batch = 6;
  Fx fx(rc);
  RecordId r = fx.table[0];
  Transaction* a = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(a, r, Value(0x44)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(a).IsBusy());  // pending in the batch
  // b's update lands in the same batch and its LBM intent trips the size
  // bound: the flush makes a's commit record durable, but a stays
  // unacknowledged (nobody polled it yet).
  Transaction* b = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(b, fx.table[1], Value(0x55)).ok());
  EXPECT_GE(fx.db.group_commit()->stats().size_flushes, 1u);
  ASSERT_TRUE(fx.db.log().IsStable(1, a->last_lsn));
  EXPECT_EQ(a->state, TxnState::kActive);
  ASSERT_TRUE(fx.db.txn().Commit(b).IsBusy());  // volatile again after flush
  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(a->state, TxnState::kCommitted);  // durable ⇒ resolved
  EXPECT_EQ(b->state, TxnState::kAborted);
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  auto slot = fx.db.records().SnoopSlot(r);
  auto slot_b = fx.db.records().SnoopSlot(fx.table[1]);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(slot_b.ok());
  EXPECT_EQ(slot->data, Value(0x44));    // a redone
  EXPECT_EQ(slot_b->data, Value(0));     // b annulled
}

// RebootAll with a non-empty pending batch: a pending commit whose record
// an unrelated force made durable is committed by crash-time resolution; a
// still-volatile pending commit is annulled with everything else.
TEST(RecoveryEdgeTest, GroupCommitRebootAllWithPendingBatch) {
  RecoveryConfig rc = RecoveryConfig::BaselineRebootAll();
  rc.group_commit = true;
  rc.group_commit_window_ns = 10'000'000;
  rc.group_commit_max_batch = 64;
  Fx fx(rc);
  RecordId rp = fx.table[0];
  RecordId rq = fx.table[1];
  Transaction* p = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(p, rp, Value(0x66)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(p).IsBusy());  // volatile pending
  Transaction* q = fx.db.txn().Begin(2);
  ASSERT_TRUE(fx.db.txn().Update(q, rq, Value(0x99)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(q).IsBusy());
  // An unrelated force (as the WAL gate or a checkpoint would issue) makes
  // q's batch durable; q stays unacknowledged until polled — the crash
  // arrives first.
  ASSERT_TRUE(fx.db.log().Force(2, 2).ok());
  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(p->state, TxnState::kAborted);    // record lost with node 1
  EXPECT_EQ(q->state, TxnState::kCommitted);  // durable ⇒ resolved
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
  auto sp = fx.db.records().SnoopSlot(rp);
  auto sq = fx.db.records().SnoopSlot(rq);
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(sq.ok());
  EXPECT_EQ(sp->data, Value(0));
  EXPECT_EQ(sq->data, Value(0x99));
}

// ROADMAP item 5 regression: RebootAll with early_commit_structural=false
// never forced split-touched pages, so a whole-machine reload restored torn
// B+-tree routing ("Corruption: descent reached a non-tree page"). The
// split fix forces every page a split touched (WAL-gated, leaf first) at
// structural commit. This is the distilled schedule that reproduced it:
// index-heavy bench workload, two whole-machine reboots mid-run. Below
// ~60 txns/node the tree stays shallow enough that the torn routing never
// lands under a descent; 60 and 75 both corrupted before the fix.
TEST(RebootAllSplitDurability, SurvivesWholeMachineReloadUnderSplitLoad) {
  for (size_t txns_per_node : {60u, 75u}) {
    HarnessConfig cfg;
    cfg.db.machine.num_nodes = 8;
    cfg.db.recovery = RecoveryConfig::BaselineRebootAll();
    cfg.num_records = 256;
    cfg.workload.txns_per_node = txns_per_node;
    cfg.workload.ops_per_txn = 8;
    cfg.workload.write_ratio = 0.5;
    cfg.workload.index_op_ratio = 0.15;
    cfg.workload.seed = 42;
    cfg.steal_flush_prob = 0.01;
    cfg.seed = 42 ^ 0xBEEF;
    uint64_t steps = txns_per_node * 8 * 8;
    cfg.crashes = {CrashPlan{steps / 2, {2}, true},
                   CrashPlan{steps * 3 / 4, {4, 5}, true}};
    Harness h(cfg);
    auto report = h.Run();
    ASSERT_TRUE(report.ok())
        << txns_per_node << " txns/node: " << report.status().ToString();
    EXPECT_TRUE(report->verify_status.ok())
        << txns_per_node << " txns/node: "
        << report->verify_status.ToString();
    EXPECT_GT(report->btree.splits, 0u)
        << "schedule must actually split, or the regression is untested";
    for (const auto& r : report->recoveries) {
      EXPECT_TRUE(r.whole_machine_restart);
    }
  }
}

// Regression (ROADMAP 5b): eager Selective Redo "duplicate live index
// entry" at >= 75 txns/node in bench_availability. A split leaf whose
// header line survives the crash (shared on a survivor) while its tail
// entry lines are lost pairs a post-split Page-LSN with pre-split
// reinstalled lines: the structural-redo Page-LSN guard then skipped the
// split's page image, and the keys the split had moved to the right
// sibling resurrected in the old leaf as duplicate live entries. The
// reinstall pass now flags such spliced pages and structural redo installs
// their images unconditionally.
TEST(RecoveryEdgeTest, SplitLeafPartialLineLossDoesNotResurrectMovedKeys) {
  for (auto rc : {RecoveryConfig::VolatileSelectiveRedo(),
                  RecoveryConfig::StableTriggeredSelectiveRedo()}) {
    DatabaseConfig c;
    c.machine.num_nodes = 4;
    c.page_size = 512;  // 4 lines: header + 3 entry lines of 4 entries each
    c.recovery = rc;
    Database db(c);
    IfaChecker checker(&db);
    db.txn().AddObserver(&checker);
    auto t = db.CreateTable(8);
    ASSERT_TRUE(t.ok());
    checker.RegisterTable(*t);

    // Node 1 fills the root leaf (12 slots) and commits; the checkpoint
    // writes the full pre-split leaf image to the stable database.
    Transaction* fill = db.txn().Begin(1);
    for (uint64_t k = 10; k <= 120; k += 10) {
      ASSERT_TRUE(db.txn().IndexInsert(fill, k, (*t)[0]).ok());
    }
    ASSERT_TRUE(db.txn().Commit(fill).ok());
    ASSERT_TRUE(db.Checkpoint(0).ok());

    // The 13th key splits the leaf: keys >= 70 move to the new right
    // sibling, the old leaf is compacted into its first entry lines, and
    // the structural nested top-level action stamps its Page-LSN.
    Transaction* split = db.txn().Begin(1);
    ASSERT_TRUE(db.txn().IndexInsert(split, 130, (*t)[0]).ok());
    ASSERT_TRUE(db.txn().Commit(split).ok());

    // A survivor looks up the leaf's lowest key: that caches the old
    // leaf's header line (post-split Page-LSN) and first entry line on
    // node 0 — but the tail entry lines stay exclusive to node 1.
    Transaction* peek = db.txn().Begin(0);
    auto found = db.txn().IndexLookup(peek, 10);
    ASSERT_TRUE(found.ok());
    EXPECT_TRUE(found->has_value());
    ASSERT_TRUE(db.txn().Commit(peek).ok());

    // Crash node 1: selective redo reinstalls the lost tail lines from the
    // pre-split stable image. The moved keys must not come back live.
    auto outcome = db.Crash({1});
    ASSERT_TRUE(outcome.ok())
        << rc.Name() << ": " << outcome.status().ToString();
    Status v = checker.VerifyAll();
    EXPECT_TRUE(v.ok()) << rc.Name() << ": " << v.ToString();
    EXPECT_TRUE(db.index().CheckStructure(0).ok()) << rc.Name();
  }
}

}  // namespace
}  // namespace smdb
