// On-demand (instant) recovery: the Recovering serving state must change
// *when* recovery work happens, never *what* state it produces.
//
// The core oracle is differential: an on-demand run whose obligations are
// drained immediately after the crash-time prefix (before any new traffic)
// must be bit-identical — every captured StateDigest — to the plain eager
// run of the same schedule, across fuzz seeds, protocol presets, and
// recovery thread widths. On top of that, lazy runs that actually serve
// traffic through the Recovering window (first-touch discharge racing the
// background sweeper, crashes landing mid-recovery) must keep the IFA
// oracle clean, and the availability decoupling must be visible: commits
// land while obligations are still pending.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/on_demand.h"
#include "core/state_digest.h"
#include "fuzz/fuzzer.h"
#include "workload/harness.h"

namespace smdb {
namespace {

std::vector<uint8_t> Value(uint8_t fill) {
  return std::vector<uint8_t>(22, fill);
}

/// The protocol presets the on-demand prefix applies to (the baselines
/// RebootAll / AbortDependents keep their own eager schemes).
std::vector<RecoveryConfig> OnDemandProtocols() {
  return {
      RecoveryConfig::VolatileSelectiveRedo(),
      RecoveryConfig::VolatileRedoAll(),
      RecoveryConfig::StableEagerRedoAll(),
      RecoveryConfig::StableTriggeredRedoAll(),
      RecoveryConfig::StableTriggeredSelectiveRedo(),
  };
}

/// Eager vs drain-immediately at one thread width: with the Recovering
/// window collapsed the two runs must be step-for-step identical, so every
/// digest (per recovery and final) matches bit for bit.
void ExpectLazyDrainMatchesEager(uint64_t seed, const RecoveryConfig& rc,
                                 uint32_t threads) {
  std::string where = "seed " + std::to_string(seed) + " protocol " +
                      rc.Name() + " W=" + std::to_string(threads);
  FuzzCase fc = SampleFuzzCase(seed);

  HarnessConfig eager = MakeHarnessConfig(fc, rc);
  eager.db.recovery.recovery_threads = threads;
  eager.capture_digests = true;
  Harness he(eager);
  auto eager_report = he.Run();
  ASSERT_TRUE(eager_report.ok())
      << where << ": " << eager_report.status().ToString();
  ASSERT_TRUE(eager_report->verify_status.ok())
      << where << ": " << eager_report->verify_status.ToString();

  HarnessConfig lazy = eager;
  lazy.db.recovery.on_demand = true;
  lazy.drain_recovery_immediately = true;
  Harness hl(lazy);
  auto lazy_report = hl.Run();
  ASSERT_TRUE(lazy_report.ok())
      << where << ": " << lazy_report.status().ToString();
  ASSERT_TRUE(lazy_report->verify_status.ok())
      << where << ": " << lazy_report->verify_status.ToString();

  ASSERT_EQ(lazy_report->recoveries.size(), eager_report->recoveries.size())
      << where;
  ASSERT_EQ(lazy_report->digests.size(), eager_report->digests.size())
      << where;
  for (size_t i = 0; i < eager_report->digests.size(); ++i) {
    ASSERT_EQ(lazy_report->digests[i], eager_report->digests[i])
        << where << " digest " << i
        << "\n  eager: " << eager_report->digests[i].ToString()
        << "\n  lazy:  " << lazy_report->digests[i].ToString();
  }
  // Transaction verdicts are part of the digest, but assert the headline
  // outcome fields directly for readable failures.
  for (size_t i = 0; i < eager_report->recoveries.size(); ++i) {
    EXPECT_EQ(lazy_report->recoveries[i].annulled,
              eager_report->recoveries[i].annulled)
        << where;
    EXPECT_EQ(lazy_report->recoveries[i].preserved,
              eager_report->recoveries[i].preserved)
        << where;
    EXPECT_EQ(lazy_report->recoveries[i].forced_aborts,
              eager_report->recoveries[i].forced_aborts)
        << where;
    EXPECT_EQ(lazy_report->recoveries[i].whole_machine_restart,
              eager_report->recoveries[i].whole_machine_restart)
        << where;
  }
  EXPECT_EQ(lazy_report->exec.committed, eager_report->exec.committed)
      << where;
}

void RunDigestMatrix(uint64_t begin, uint64_t end, uint32_t threads) {
  for (uint64_t seed = begin; seed < end; ++seed) {
    for (const RecoveryConfig& rc : OnDemandProtocols()) {
      ExpectLazyDrainMatchesEager(seed, rc, threads);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(OnDemandDigest, DrainMatchesEagerSerialShard0) {
  RunDigestMatrix(0, 12, 1);
}
TEST(OnDemandDigest, DrainMatchesEagerSerialShard1) {
  RunDigestMatrix(12, 24, 1);
}
TEST(OnDemandDigest, DrainMatchesEagerW4) { RunDigestMatrix(0, 8, 4); }
TEST(OnDemandDigest, DrainMatchesEagerW8) { RunDigestMatrix(8, 16, 8); }

// The pool-backed sweeper: with a per-step budget and recovery_threads > 1,
// SweepStep dispatches batches of clean heap records (USN-guarded redo
// only, pairwise-distinct pages) onto the RecoveryManager's ThreadPool.
// Performers are drawn at plan time in sweep order and USN-allocating work
// runs solo, so the USN stream — and therefore every captured digest —
// must match the serial sweep bit for bit. Single-crash schedules only:
// CLR placement inside the eager prefix is performer-dependent at W > 1
// and feeds later recoveries' log scans, so only the first parallelised
// recovery is digest-comparable (the repo-wide caveat, cf.
// recovery_equivalence_test).
TEST(OnDemandDigest, ParallelSweepMatchesSerialSweep) {
  uint64_t batched_total = 0;
  for (uint64_t seed : {2u, 9u, 17u, 29u}) {
    FuzzCase fc = SampleFuzzCase(seed);
    for (const RecoveryConfig& rc : OnDemandProtocols()) {
      HarnessConfig base = MakeHarnessConfig(fc, rc);
      if (base.crashes.empty()) continue;
      base.crashes.resize(1);
      base.db.recovery.on_demand = true;
      // Small pages spread the fuzz table across many heap pages: batch
      // members must sit on pairwise-distinct pages (they share the header
      // line and Page-LSN otherwise), so a one-page table can never batch.
      base.db.page_size = 512;
      base.pump_recovery_per_step = 4;
      base.capture_digests = true;
      std::string ctx = "seed " + std::to_string(seed) + " " + rc.Name();

      Harness hs(base);
      auto serial = hs.Run();
      ASSERT_TRUE(serial.ok()) << ctx << ": " << serial.status().ToString();
      ASSERT_TRUE(serial->verify_status.ok())
          << ctx << ": " << serial->verify_status.ToString();

      for (uint32_t threads : {4u, 8u}) {
        std::string where = ctx + " W=" + std::to_string(threads);
        HarnessConfig par = base;
        par.db.recovery.recovery_threads = threads;
        Harness hp(par);
        auto report = hp.Run();
        ASSERT_TRUE(report.ok())
            << where << ": " << report.status().ToString();
        ASSERT_TRUE(report->verify_status.ok())
            << where << ": " << report->verify_status.ToString();
        ASSERT_EQ(report->digests.size(), serial->digests.size()) << where;
        for (size_t i = 0; i < serial->digests.size(); ++i) {
          ASSERT_EQ(report->digests[i], serial->digests[i])
              << where << " digest " << i
              << "\n  serial:   " << serial->digests[i].ToString()
              << "\n  parallel: " << report->digests[i].ToString();
        }
        EXPECT_EQ(report->exec.committed, serial->exec.committed) << where;
        if (hp.db().on_demand() != nullptr) {
          batched_total += hp.db().on_demand()->stats().sweep_batched_records;
        }
      }
    }
  }
  EXPECT_GT(batched_total, 0u)
      << "no run ever dispatched a pool batch — the parallel sweep path "
         "was never exercised";
}

// Serving traffic through the Recovering window: first-touch discharges
// race the background sweeper at several budgets, and the IFA oracle must
// stay clean (the harness defers verification until the final drain).
TEST(OnDemandServing, FirstTouchRacesSweeperCleanly) {
  for (uint64_t seed : {3u, 11u, 27u, 40u}) {
    for (int pump : {0, 1, 5}) {
      FuzzCase fc = SampleFuzzCase(seed);
      for (const RecoveryConfig& rc : OnDemandProtocols()) {
        HarnessConfig cfg = MakeHarnessConfig(fc, rc);
        cfg.db.recovery.on_demand = true;
        cfg.pump_recovery_per_step = pump;
        std::string where = "seed " + std::to_string(seed) + " pump " +
                            std::to_string(pump) + " " + rc.Name();
        Harness h(cfg);
        auto report = h.Run();
        ASSERT_TRUE(report.ok()) << where << ": "
                                 << report.status().ToString();
        EXPECT_TRUE(report->verify_status.ok())
            << where << ": " << report->verify_status.ToString();
      }
    }
  }
}

// A second crash landing while the first crash's obligations are still
// pending: RecoveryManager resets the driver and re-derives everything
// from stable state, so back-to-back crash plans with no draining traffic
// between them must still verify.
TEST(OnDemandServing, CrashDuringRecoveringWindowVerifies) {
  for (uint64_t seed : {5u, 19u, 33u}) {
    FuzzCase fc = SampleFuzzCase(seed);
    for (const RecoveryConfig& rc : OnDemandProtocols()) {
      HarnessConfig cfg = MakeHarnessConfig(fc, rc);
      cfg.db.recovery.on_demand = true;
      cfg.pump_recovery_per_step = 0;  // nothing sweeps between crashes
      // Stack a second crash plan right after each existing one so the
      // second recovery starts while the first window is still open.
      std::vector<CrashPlan> doubled;
      for (const CrashPlan& p : cfg.crashes) {
        doubled.push_back(p);
        CrashPlan follow = p;
        follow.at_step = p.at_step + 2;
        doubled.push_back(follow);
      }
      cfg.crashes = std::move(doubled);
      std::string where = "seed " + std::to_string(seed) + " " + rc.Name();
      Harness h(cfg);
      auto report = h.Run();
      ASSERT_TRUE(report.ok()) << where << ": " << report.status().ToString();
      EXPECT_TRUE(report->verify_status.ok())
          << where << ": " << report->verify_status.ToString();
    }
  }
}

struct Fx {
  explicit Fx(RecoveryConfig rc, uint16_t nodes = 4) : db(MakeCfg(rc, nodes)) {
    auto t = db.CreateTable(32);
    EXPECT_TRUE(t.ok());
    table = *t;
    EXPECT_TRUE(db.Checkpoint(0).ok());
  }
  static DatabaseConfig MakeCfg(RecoveryConfig rc, uint16_t nodes) {
    DatabaseConfig c;
    c.machine.num_nodes = nodes;
    rc.on_demand = true;
    c.recovery = rc;
    return c;
  }
  Database db;
  std::vector<RecordId> table;
};

// The decoupling itself: after the crash-time prefix returns, obligations
// are pending, new transactions commit, and the first touch of an
// unrecovered record serves its recovered (committed) value.
TEST(OnDemandServing, CommitsLandWhileObligationsPending) {
  Fx fx(RecoveryConfig::VolatileSelectiveRedo());
  // Survivor work on node 0 whose line migrates: committed, needs redo.
  Transaction* t0 = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Update(t0, fx.table[1], Value(0xC1)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t0).ok());
  // Crashed-node work: committed (forced) update on node 1.
  Transaction* t1 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t1, fx.table[2], Value(0xC2)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t1).ok());
  // Uncommitted update on node 1 — needs undo after the crash.
  Transaction* t2 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t2, fx.table[3], Value(0xBB)).ok());

  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(fx.db.RecoveringActive());
  ASSERT_NE(fx.db.on_demand(), nullptr);
  EXPECT_GT(fx.db.on_demand()->pending_objects(), 0u);

  // A brand-new transaction on an untouched record commits immediately,
  // while the crash's obligations are still pending.
  size_t pending_before = fx.db.on_demand()->pending_objects();
  Transaction* t3 = fx.db.txn().Begin(2);
  ASSERT_TRUE(fx.db.txn().Update(t3, fx.table[9], Value(0x33)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t3).ok());
  EXPECT_TRUE(fx.db.RecoveringActive())
      << "an untouched-record commit must not force a full drain";

  // First touch of the unrecovered records discharges them on demand and
  // returns recovered values: the undone record shows its pre-t2 state,
  // the committed one its committed bytes.
  Transaction* t4 = fx.db.txn().Begin(2);
  auto v2 = fx.db.txn().Read(t4, fx.table[2]);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(*v2, Value(0xC2));
  auto v3 = fx.db.txn().Read(t4, fx.table[3]);
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  EXPECT_NE(*v3, Value(0xBB)) << "uncommitted crash work must be undone";
  ASSERT_TRUE(fx.db.txn().Commit(t4).ok());
  EXPECT_LT(fx.db.on_demand()->pending_objects(), pending_before);
  EXPECT_GT(fx.db.on_demand()->stats().first_touch_discharges, 0u);

  // The sweeper finishes the rest; the drained state verifies.
  while (fx.db.RecoveringActive()) {
    auto swept = fx.db.PumpRecovery(4);
    ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  }
  EXPECT_EQ(fx.db.on_demand()->pending_objects(), 0u);
  EXPECT_GT(fx.db.on_demand()->stats().sweep_discharges, 0u);
}

// Checkpoints truncate the stable logs lazy obligations still reference;
// Database::Checkpoint must drain first rather than corrupt the window.
TEST(OnDemandServing, CheckpointDrainsPendingObligations) {
  Fx fx(RecoveryConfig::VolatileRedoAll());
  Transaction* t0 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t0, fx.table[4], Value(0x44)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t0).ok());
  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(fx.db.RecoveringActive());
  ASSERT_TRUE(fx.db.Checkpoint(0).ok());
  EXPECT_FALSE(fx.db.RecoveringActive());
  auto slot = fx.db.records().SnoopSlot(fx.table[4]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0x44));
}

// The observatory's availability record splits the crash timeline: the
// eager prefix ends at recovery_end_ts, the last lazy obligation at
// drain_end_ts. With traffic between them, TTFC is decoupled from the
// total recovery span.
TEST(OnDemandServing, DrainTimestampExtendsPastEagerPrefix) {
  RecoveryConfig rc = RecoveryConfig::VolatileSelectiveRedo();
  rc.on_demand = true;
  DatabaseConfig c;
  c.machine.num_nodes = 4;
  c.recovery = rc;
  c.obs.enabled = true;
  Database db(c);
  auto t = db.CreateTable(32);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db.Checkpoint(0).ok());
  Transaction* t0 = db.txn().Begin(1);
  ASSERT_TRUE(db.txn().Update(t0, (*t)[1], Value(0x77)).ok());
  ASSERT_TRUE(db.txn().Commit(t0).ok());
  ASSERT_TRUE(db.Crash({1}).ok());
  ASSERT_TRUE(db.RecoveringActive());

  // Commit through the Recovering window, then drain.
  Transaction* t1 = db.txn().Begin(0);
  ASSERT_TRUE(db.txn().Update(t1, (*t)[20], Value(0x78)).ok());
  ASSERT_TRUE(db.txn().Commit(t1).ok());
  ASSERT_TRUE(db.DrainRecovery().ok());

  LatencyReport rep = db.observatory().Snapshot();
  ASSERT_EQ(rep.availability.crashes.size(), 1u);
  const CrashAvailability& ca = rep.availability.crashes[0];
  EXPECT_GT(ca.recovery_end_ts, ca.crash_ts);
  EXPECT_GT(ca.drain_end_ts, ca.recovery_end_ts)
      << "lazy work must finish after the eager prefix";
  EXPECT_TRUE(ca.saw_commit_after);
  EXPECT_LT(ca.first_commit_ts, ca.drain_end_ts)
      << "TTFC must not wait for the full drain";
}

// The fuzzer's on-demand mode (Options::on_demand, smdb_fuzz
// --on-demand-recovery) composes with every default protocol and with the
// parallel differential, and the flag round-trips through replay files.
// Runs the DEFAULT protocol set — including the baselines. The knob must
// be a strict no-op for RebootAll/AbortDependents: they delegate into the
// schemes (AbortDependents calls RunSelectiveRedo) and their contracts
// assume a fully recovered state on return, so the lazy gate keys on the
// *configured* restart kind. Seed 23 caught exactly that: AbortDependents
// going lazy aborted dependents against a half-recovered state.
TEST(OnDemandFuzz, CampaignSliceRunsClean) {
  CrashScheduleFuzzer::Options opts;
  opts.on_demand = true;
  CrashScheduleFuzzer fuzzer(opts);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    auto failure = fuzzer.RunSeed(seed);
    ASSERT_FALSE(failure.has_value())
        << "seed " << seed << " failed under " << failure->protocol.Name()
        << ": [" << failure->verdict.kind << "] " << failure->verdict.detail;
  }
  EXPECT_GT(fuzzer.stats().committed, 0u);
  EXPECT_GT(fuzzer.stats().crashes_fired, 0u);
}

TEST(OnDemandFuzz, FlagRoundTripsThroughReplays) {
  CrashScheduleFuzzer::Options opts;
  opts.on_demand = true;
  CrashScheduleFuzzer fuzzer(opts);
  FuzzFailure failure;
  failure.seed = 4;
  failure.fuzz_case = SampleFuzzCase(4);
  failure.protocol =
      fuzzer.EffectiveProtocol(RecoveryConfig::VolatileSelectiveRedo());
  failure.verdict = {true, "ifa-verify", "synthetic"};
  ASSERT_TRUE(failure.protocol.on_demand);
  std::string text = fuzzer.ReplayJson(failure, failure.fuzz_case);
  auto doc = CrashScheduleFuzzer::ParseReplay(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->on_demand);
  EXPECT_TRUE(doc->protocol.on_demand);
}

}  // namespace
}  // namespace smdb
