#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "storage/stable_log.h"

namespace smdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("xyz");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: xyz");
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::LineLost().IsLineLost());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::NodeFailed().IsNodeFailed());
}

TEST(ResultTest, ValueAndError) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  Result<int> e = Status::IoError("disk");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Status::Code::kIoError);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(TypesTest, TxnIdEncodesNode) {
  TxnId id = MakeTxnId(37, 123456);
  EXPECT_EQ(TxnNode(id), 37);
  EXPECT_EQ(TxnSeq(id), 123456u);
}

TEST(TypesTest, RecordIdOrderingAndHash) {
  RecordId a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (RecordId{1, 2}));
  std::hash<RecordId> h;
  EXPECT_NE(h(a), h(b));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng r(3);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.Bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ZipfSkewsTowardHead) {
  Rng r(4);
  uint64_t head = 0, total = 10000;
  for (uint64_t i = 0; i < total; ++i) {
    if (r.Zipf(1000, 0.99) < 10) ++head;
  }
  // With theta=0.99 the top-10 of 1000 items draw far more than 1% of
  // accesses.
  EXPECT_GT(head, total / 10);
}

TEST(RngTest, ZipfUniformWhenThetaZero) {
  Rng r(5);
  uint64_t head = 0, total = 10000;
  for (uint64_t i = 0; i < total; ++i) {
    if (r.Zipf(1000, 0.0) < 10) ++head;
  }
  EXPECT_LT(head, total / 20);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng r(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(workers);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{100}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, DisjointSlotWritesNeedNoSynchronisation) {
  // The recovery pipeline's usage pattern: each task writes only its own
  // slot of a pre-sized vector.
  ThreadPool pool(4);
  std::vector<uint64_t> out(1000, 0);
  pool.ParallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, BackToBackCallsNeverLeakWorkAcrossGenerations) {
  // Regression: a straggler worker still draining generation g while the
  // caller starts generation g+1 must not execute the new items through
  // its stale job pointer (the previous ParallelFor's function object is
  // destroyed the moment that call returns). Rapid back-to-back calls
  // with a fresh heap-allocated capture each round make a stale execution
  // a use-after-free, which ASan/TSan runs of this test flag loudly.
  ThreadPool pool(8);
  for (int round = 0; round < 2000; ++round) {
    auto sums = std::make_unique<std::vector<std::atomic<uint64_t>>>(4);
    auto* s = sums.get();
    pool.ParallelFor(4, [s, round](size_t i) {
      (*s)[i].fetch_add(uint64_t{unsigned(round)} * 4 + i);
    });
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_EQ((*s)[i].load(), uint64_t{unsigned(round)} * 4 + i)
          << "round " << round;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossParallelForCalls) {
  ThreadPool pool(3);
  uint64_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> slot(17, 0);
    pool.ParallelFor(slot.size(), [&](size_t i) { slot[i] = i + 1; });
    total += std::accumulate(slot.begin(), slot.end(), uint64_t{0});
  }
  EXPECT_EQ(total, 50u * (17u * 18u / 2u));
}

TEST(StableLogStoreTest, BulkAppendPreservesLsnOrder) {
  StableLogStore store(2);
  auto batch = [](Lsn first, size_t n) {
    std::vector<LogRecord> out;
    for (size_t i = 0; i < n; ++i) {
      LogRecord rec;
      rec.lsn = first + static_cast<Lsn>(i);
      rec.node = 0;
      out.push_back(std::move(rec));
    }
    return out;
  };
  // First append takes the empty-stream fast path, the rest the bulk-move
  // insert; both must keep the stream in LSN order across batch boundaries.
  store.Append(0, batch(1, 3));
  store.Append(0, batch(4, 1));
  store.Append(0, batch(5, 64));
  const auto& recs = store.Records(0);
  ASSERT_EQ(recs.size(), 68u);
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].lsn, static_cast<Lsn>(i + 1));
  }
  EXPECT_EQ(store.LastLsn(0), 68u);
  EXPECT_EQ(store.LastLsn(1), kInvalidLsn);
}

}  // namespace
}  // namespace smdb
