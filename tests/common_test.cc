#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace smdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("xyz");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: xyz");
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::LineLost().IsLineLost());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::NodeFailed().IsNodeFailed());
}

TEST(ResultTest, ValueAndError) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  Result<int> e = Status::IoError("disk");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Status::Code::kIoError);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(TypesTest, TxnIdEncodesNode) {
  TxnId id = MakeTxnId(37, 123456);
  EXPECT_EQ(TxnNode(id), 37);
  EXPECT_EQ(TxnSeq(id), 123456u);
}

TEST(TypesTest, RecordIdOrderingAndHash) {
  RecordId a{1, 2}, b{1, 3}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (RecordId{1, 2}));
  std::hash<RecordId> h;
  EXPECT_NE(h(a), h(b));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng r(3);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.Bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ZipfSkewsTowardHead) {
  Rng r(4);
  uint64_t head = 0, total = 10000;
  for (uint64_t i = 0; i < total; ++i) {
    if (r.Zipf(1000, 0.99) < 10) ++head;
  }
  // With theta=0.99 the top-10 of 1000 items draw far more than 1% of
  // accesses.
  EXPECT_GT(head, total / 10);
}

TEST(RngTest, ZipfUniformWhenThetaZero) {
  Rng r(5);
  uint64_t head = 0, total = 10000;
  for (uint64_t i = 0; i < total; ++i) {
    if (r.Zipf(1000, 0.0) < 10) ++head;
  }
  EXPECT_LT(head, total / 20);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng r(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace smdb
