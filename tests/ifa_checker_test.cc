// Tests that the IFA oracle itself detects violations: a checker that
// cannot fail is no oracle. Each test fabricates a specific corruption by
// bypassing the transaction layer and asserts the checker flags it.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/ifa_checker.h"

namespace smdb {
namespace {

std::vector<uint8_t> Value(uint8_t fill) {
  return std::vector<uint8_t>(22, fill);
}

struct Fx {
  Fx() : db(MakeCfg()), checker(&db) {
    db.txn().AddObserver(&checker);
    auto t = db.CreateTable(16);
    EXPECT_TRUE(t.ok());
    table = *t;
    checker.RegisterTable(table);
  }
  static DatabaseConfig MakeCfg() {
    DatabaseConfig c;
    c.machine.num_nodes = 4;
    return c;
  }
  Database db;
  IfaChecker checker;
  std::vector<RecordId> table;
};

TEST(IfaCheckerTest, CleanStateVerifies) {
  Fx fx;
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
  Transaction* t = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(1)).ok());
  // Pending state is part of the expectation.
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
  ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST(IfaCheckerTest, DetectsLostCommittedUpdate) {
  Fx fx;
  Transaction* t = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(1)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  // Corrupt: overwrite the committed value behind the oracle's back.
  SlotImage img;
  img.usn = 9999;
  img.tag = kTagNone;
  img.data = Value(0x77);
  ASSERT_TRUE(fx.db.records().WriteSlot(1, fx.table[0], img).ok());
  Status v = fx.checker.VerifyRecords();
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.ToString().find("IFA violation"), std::string::npos);
}

TEST(IfaCheckerTest, DetectsLostPendingUpdate) {
  Fx fx;
  Transaction* t = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(1)).ok());
  // Corrupt: revert the record while the transaction is still active.
  SlotImage img;
  img.usn = 9999;
  img.tag = kTagNone;
  img.data = Value(0);
  ASSERT_TRUE(fx.db.records().WriteSlot(1, fx.table[0], img).ok());
  EXPECT_FALSE(fx.checker.VerifyRecords().ok());
}

TEST(IfaCheckerTest, DetectsResurrectedIndexKey) {
  Fx fx;
  Transaction* t = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().IndexInsert(t, 5, fx.table[0]).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  Transaction* t2 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().IndexDelete(t2, 5).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t2).ok());
  EXPECT_TRUE(fx.checker.VerifyIndex().ok());
  // Corrupt: resurrect the key behind the oracle's back.
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(fx.db.index()
                  .UndoDelete(0, MakeTxnId(0, 42), 5, &chain, false)
                  .ok());
  EXPECT_FALSE(fx.checker.VerifyIndex().ok());
}

TEST(IfaCheckerTest, DetectsMissingIndexKey) {
  Fx fx;
  Transaction* t = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().IndexInsert(t, 5, fx.table[0]).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(fx.db.index()
                  .UndoInsert(0, MakeTxnId(0, 42), 5, &chain, false)
                  .ok());
  Status v = fx.checker.VerifyIndex();
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.ToString().find("missing live key"), std::string::npos);
}

TEST(IfaCheckerTest, DetectsLockHeldByFinishedTxn) {
  Fx fx;
  Transaction* t = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Read(t, fx.table[0]).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t).ok());
  // Corrupt: re-insert a holder entry for the committed transaction.
  Lcb lcb;
  lcb.name = RecordLockName(fx.table[0]);
  lcb.holders = {{t->id, LockMode::kShared}};
  ASSERT_TRUE(fx.db.locks().RebuildLcb(1, lcb).ok());
  EXPECT_FALSE(fx.checker.VerifyLocks().ok());
}

TEST(IfaCheckerTest, DetectsLostGrantedLock) {
  Fx fx;
  Transaction* t = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Read(t, fx.table[0]).ok());
  // Corrupt: drop the active transaction's lock behind its back.
  auto dropped = fx.db.locks().DropTxnLocks(1, {t->id});
  ASSERT_TRUE(dropped.ok());
  ASSERT_EQ(*dropped, 1);
  EXPECT_FALSE(fx.checker.VerifyLocks().ok());
  // Clean up so the fixture teardown stays consistent.
  ASSERT_TRUE(fx.db.txn().Abort(t).ok());
}

TEST(IfaCheckerTest, AbortDropsPendingExpectations) {
  Fx fx;
  Transaction* t = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Update(t, fx.table[0], Value(1)).ok());
  ASSERT_TRUE(fx.db.txn().IndexInsert(t, 9, fx.table[1]).ok());
  ASSERT_TRUE(fx.db.txn().Abort(t).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok())
      << fx.checker.VerifyAll().ToString();
}

}  // namespace
}  // namespace smdb
