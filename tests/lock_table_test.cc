// Unit tests for the shared-memory lock manager: LCB codecs, grant/queue
// semantics, promotions, lock-op logging, and crash behaviour of one-line
// vs two-line LCB layouts (section 4.2.2).

#include <gtest/gtest.h>

#include "lockmgr/lock_table.h"
#include "sim/machine.h"

namespace smdb {
namespace {

struct LockFixture {
  explicit LockFixture(bool two_line = false)
      : machine(MakeCfg()),
        stable(4),
        log(&machine, &stable),
        locks(&machine, &log, MakeLtCfg(two_line)) {}
  static MachineConfig MakeCfg() {
    MachineConfig c;
    c.num_nodes = 4;
    return c;
  }
  static LockTableConfig MakeLtCfg(bool two_line) {
    LockTableConfig c;
    c.buckets = 64;
    c.two_line_lcb = two_line;
    return c;
  }
  Machine machine;
  StableLogStore stable;
  LogManager log;
  LockTable locks;
};

TEST(LcbCodecTest, SingleLineRoundTrip) {
  LcbCodec codec(128, /*two_line=*/false);
  EXPECT_EQ(codec.lines(), 1u);
  Lcb lcb;
  lcb.name = 0xABCD;
  lcb.holders = {{MakeTxnId(0, 1), LockMode::kShared},
                 {MakeTxnId(1, 2), LockMode::kShared}};
  lcb.waiters = {{MakeTxnId(2, 3), LockMode::kExclusive}};
  std::vector<uint8_t> buf(codec.bytes());
  codec.Encode(lcb, buf.data());
  Lcb out = codec.Decode(buf.data());
  EXPECT_EQ(out.name, lcb.name);
  EXPECT_EQ(out.holders, lcb.holders);
  EXPECT_EQ(out.waiters, lcb.waiters);
}

TEST(LcbCodecTest, TwoLineRoundTripAndCapacity) {
  LcbCodec codec(128, /*two_line=*/true);
  EXPECT_EQ(codec.lines(), 2u);
  EXPECT_GT(codec.holders_capacity(), LcbCodec(128, false).holders_capacity());
  Lcb lcb;
  lcb.name = 7;
  for (int i = 0; i < 10; ++i) {
    lcb.holders.push_back({MakeTxnId(i % 4, i), LockMode::kShared});
  }
  std::vector<uint8_t> buf(codec.bytes());
  codec.Encode(lcb, buf.data());
  EXPECT_EQ(codec.Decode(buf.data()).holders.size(), 10u);
}

TEST(LcbTest, GrantLogic) {
  Lcb lcb;
  lcb.name = 1;
  EXPECT_TRUE(lcb.CanGrant(MakeTxnId(0, 1), LockMode::kExclusive));
  lcb.holders.push_back({MakeTxnId(0, 1), LockMode::kShared});
  EXPECT_TRUE(lcb.CanGrant(MakeTxnId(1, 1), LockMode::kShared));
  EXPECT_FALSE(lcb.CanGrant(MakeTxnId(1, 1), LockMode::kExclusive));
  // FIFO fairness: an S request behind a queued X must wait.
  lcb.waiters.push_back({MakeTxnId(2, 1), LockMode::kExclusive});
  EXPECT_FALSE(lcb.CanGrant(MakeTxnId(3, 1), LockMode::kShared));
}

TEST(LockTableTest, SharedGrantsConcurrently) {
  LockFixture f;
  TxnId t0 = MakeTxnId(0, 1), t1 = MakeTxnId(1, 1);
  auto r0 = f.locks.Acquire(0, t0, 100, LockMode::kShared, nullptr);
  auto r1 = f.locks.Acquire(1, t1, 100, LockMode::kShared, nullptr);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r0, LockResult::kGranted);
  EXPECT_EQ(*r1, LockResult::kGranted);
  auto holders = f.locks.Holders(0, 100);
  ASSERT_TRUE(holders.ok());
  EXPECT_EQ(holders->size(), 2u);
}

TEST(LockTableTest, ExclusiveConflictQueues) {
  LockFixture f;
  TxnId t0 = MakeTxnId(0, 1), t1 = MakeTxnId(1, 1);
  ASSERT_TRUE(f.locks.Acquire(0, t0, 5, LockMode::kExclusive, nullptr).ok());
  auto r = f.locks.Acquire(1, t1, 5, LockMode::kExclusive, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, LockResult::kQueued);
  // Release promotes the waiter.
  ASSERT_TRUE(f.locks.Release(0, t0, 5, nullptr).ok());
  auto poll = f.locks.PollGrant(1, t1, 5, LockMode::kExclusive, nullptr);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(*poll, LockResult::kGranted);
}

TEST(LockTableTest, UpgradeSoleHolder) {
  LockFixture f;
  TxnId t0 = MakeTxnId(0, 1);
  ASSERT_TRUE(f.locks.Acquire(0, t0, 5, LockMode::kShared, nullptr).ok());
  auto r = f.locks.Acquire(0, t0, 5, LockMode::kExclusive, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, LockResult::kGranted);
  auto mode = f.locks.HeldMode(0, t0, 5);
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, LockMode::kExclusive);
}

TEST(LockTableTest, UpgradeWithOtherSharersQueues) {
  LockFixture f;
  TxnId t0 = MakeTxnId(0, 1), t1 = MakeTxnId(1, 1);
  ASSERT_TRUE(f.locks.Acquire(0, t0, 5, LockMode::kShared, nullptr).ok());
  ASSERT_TRUE(f.locks.Acquire(1, t1, 5, LockMode::kShared, nullptr).ok());
  auto r = f.locks.Acquire(0, t0, 5, LockMode::kExclusive, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, LockResult::kQueued);
  // Releasing the other sharer promotes the upgrade.
  ASSERT_TRUE(f.locks.Release(1, t1, 5, nullptr).ok());
  auto poll = f.locks.PollGrant(0, t0, 5, LockMode::kExclusive, nullptr);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(*poll, LockResult::kGranted);
}

TEST(LockTableTest, ReleaseRemovesWaiterToo) {
  LockFixture f;
  TxnId t0 = MakeTxnId(0, 1), t1 = MakeTxnId(1, 1);
  ASSERT_TRUE(f.locks.Acquire(0, t0, 5, LockMode::kExclusive, nullptr).ok());
  ASSERT_TRUE(f.locks.Acquire(1, t1, 5, LockMode::kExclusive, nullptr).ok());
  // t1 gives up (e.g. deadlock victim): release must clear its waiter slot.
  ASSERT_TRUE(f.locks.Release(1, t1, 5, nullptr).ok());
  auto lcb = f.locks.GetLcb(0, 5);
  ASSERT_TRUE(lcb.ok());
  EXPECT_TRUE(lcb->waiters.empty());
}

TEST(LockTableTest, LockOpsAreLogged) {
  LockFixture f;
  TxnId t0 = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(f.locks.Acquire(0, t0, 5, LockMode::kShared, &chain).ok());
  EXPECT_NE(chain, kInvalidLsn);
  ASSERT_TRUE(f.locks.Release(0, t0, 5, &chain).ok());
  int acquires = 0, releases = 0;
  f.log.ForEachAll(0, [&](const LogRecord& rec) {
    if (rec.type != LogRecordType::kLockOp) return;
    if (rec.lock_op().op == LockOpPayload::Op::kAcquire) ++acquires;
    if (rec.lock_op().op == LockOpPayload::Op::kRelease) ++releases;
  });
  EXPECT_EQ(acquires, 1);  // read locks are logged (Table 1)
  EXPECT_EQ(releases, 1);
}

TEST(LockTableTest, ManyDistinctNamesProbeCorrectly) {
  LockFixture f;
  // More names than fit without collisions in 64 buckets.
  for (uint64_t name = 1; name <= 40; ++name) {
    TxnId t = MakeTxnId(name % 4, name);
    auto r = f.locks.Acquire(static_cast<NodeId>(name % 4), t, name,
                             LockMode::kExclusive, nullptr);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_EQ(*r, LockResult::kGranted);
  }
  for (uint64_t name = 1; name <= 40; ++name) {
    TxnId t = MakeTxnId(name % 4, name);
    auto mode = f.locks.HeldMode(0, t, name);
    ASSERT_TRUE(mode.ok());
    EXPECT_EQ(*mode, LockMode::kExclusive) << name;
  }
}

TEST(LockTableTest, DropTxnLocksPromotesWaiters) {
  LockFixture f;
  TxnId t0 = MakeTxnId(0, 1), t1 = MakeTxnId(1, 1);
  ASSERT_TRUE(f.locks.Acquire(0, t0, 9, LockMode::kExclusive, nullptr).ok());
  ASSERT_TRUE(f.locks.Acquire(1, t1, 9, LockMode::kExclusive, nullptr).ok());
  auto dropped = f.locks.DropTxnLocks(2, {t0});
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 1);
  auto lcb = f.locks.GetLcb(2, 9);
  ASSERT_TRUE(lcb.ok());
  ASSERT_EQ(lcb->holders.size(), 1u);
  EXPECT_EQ(lcb->holders[0].txn, t1);
}

TEST(LockTableTest, SingleLineLcbDiesWholesale) {
  LockFixture f(/*two_line=*/false);
  TxnId t0 = MakeTxnId(0, 1), t1 = MakeTxnId(1, 1);
  ASSERT_TRUE(f.locks.Acquire(0, t0, 9, LockMode::kShared, nullptr).ok());
  ASSERT_TRUE(f.locks.Acquire(1, t1, 9, LockMode::kShared, nullptr).ok());
  // The LCB line now lives on node 1 (last toucher). Crash it.
  f.machine.CrashNode(1);
  int lost = 0;
  f.locks.SnapshotAll(&lost);
  EXPECT_EQ(lost, 1);  // all-or-nothing loss
  EXPECT_EQ(f.locks.LostLines().size(), 1u);
  EXPECT_EQ(f.locks.ClearLostLines(), 1);
  EXPECT_TRUE(f.locks.LostLines().empty());
}

TEST(LockTableTest, RebuildLcbRestoresState) {
  LockFixture f;
  TxnId t0 = MakeTxnId(0, 1);
  Lcb lcb;
  lcb.name = 33;
  lcb.holders = {{t0, LockMode::kShared}};
  ASSERT_TRUE(f.locks.RebuildLcb(2, lcb).ok());
  auto mode = f.locks.HeldMode(0, t0, 33);
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, LockMode::kShared);
}

TEST(LockTableTest, RebuildPromotesStrandedWaiter) {
  LockFixture f;
  TxnId t1 = MakeTxnId(1, 1);
  Lcb lcb;
  lcb.name = 44;
  lcb.waiters = {{t1, LockMode::kExclusive}};  // no holders: must promote
  ASSERT_TRUE(f.locks.RebuildLcb(2, lcb).ok());
  auto got = f.locks.GetLcb(0, 44);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->holders.size(), 1u);
  EXPECT_TRUE(got->waiters.empty());
}

TEST(LockTableTest, ReacquireHeldLockIsGrantedCheaply) {
  LockFixture f;
  TxnId t0 = MakeTxnId(0, 1);
  ASSERT_TRUE(f.locks.Acquire(0, t0, 5, LockMode::kExclusive, nullptr).ok());
  auto r = f.locks.Acquire(0, t0, 5, LockMode::kShared, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, LockResult::kGranted);
  auto lcb = f.locks.GetLcb(0, 5);
  ASSERT_TRUE(lcb.ok());
  EXPECT_EQ(lcb->holders.size(), 1u);  // no duplicate entries
}

// Regression: LCB slots must be reclaimed when the last holder/waiter
// leaves, or long-running workloads exhaust the probe window and every new
// lock name spins on TryAgain forever.
TEST(LockTableTest, SlotReclamationSupportsUnboundedNames) {
  LockFixture f;  // 64 buckets, probe window 32
  for (uint64_t name = 1; name <= 5000; ++name) {
    TxnId t = MakeTxnId(0, name);
    auto r = f.locks.Acquire(0, t, name, LockMode::kExclusive, nullptr);
    ASSERT_TRUE(r.ok()) << "name " << name << ": "
                        << r.status().ToString();
    ASSERT_EQ(*r, LockResult::kGranted);
    ASSERT_TRUE(f.locks.Release(0, t, name, nullptr).ok());
  }
  // The table is empty again.
  EXPECT_TRUE(f.locks.SnapshotAll().empty());
}

TEST(LockTableTest, ReleaseOfUnknownNameIsIdempotent) {
  LockFixture f;
  EXPECT_TRUE(f.locks.Release(0, MakeTxnId(0, 1), 424242, nullptr).ok());
}

TEST(LockTableTest, RecordAndKeyLockNamesDisjoint) {
  EXPECT_NE(RecordLockName({1, 2}), KeyLockName(1, 2));
  EXPECT_NE(RecordLockName({0, 0}), KeyLockName(0, 0));
  EXPECT_NE(RecordLockName({1, 2}), RecordLockName({2, 1}));
  EXPECT_NE(KeyLockName(1, 5), KeyLockName(2, 5));
}

}  // namespace
}  // namespace smdb
