// Integration tests for the paper's core crash scenarios (sections 3.1,
// 4.1.1, figure 2): records r1 and r2 share a cache line; transactions on
// different nodes update them; one node crashes. Under each IFA protocol,
// recovery must (case 1) undo the crashed transaction's migrated update and
// (case 2) redo the survivor's destroyed update.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/recovery_manager.h"

namespace smdb {
namespace {

DatabaseConfig MakeConfig(RecoveryConfig rc, uint16_t nodes = 4) {
  DatabaseConfig c;
  c.machine.num_nodes = nodes;
  c.recovery = rc;
  return c;
}

std::vector<uint8_t> Value(uint8_t fill, size_t n = 22) {
  return std::vector<uint8_t>(n, fill);
}

struct Fixture {
  explicit Fixture(RecoveryConfig rc)
      : db(MakeConfig(rc)), checker(&db) {
    db.txn().AddObserver(&checker);
    auto t = db.CreateTable(8);
    EXPECT_TRUE(t.ok());
    table = *t;
    checker.RegisterTable(table);
    EXPECT_TRUE(db.Checkpoint(0).ok());
  }

  Database db;
  IfaChecker checker;
  std::vector<RecordId> table;
};

class CrashScenarioTest : public ::testing::TestWithParam<RecoveryConfig> {};

INSTANTIATE_TEST_SUITE_P(
    IfaProtocols, CrashScenarioTest,
    ::testing::Values(RecoveryConfig::VolatileSelectiveRedo(),
                      RecoveryConfig::VolatileRedoAll(),
                      RecoveryConfig::StableEagerRedoAll(),
                      RecoveryConfig::StableTriggeredRedoAll(),
                      RecoveryConfig::StableTriggeredSelectiveRedo()),
    [](const ::testing::TestParamInfo<RecoveryConfig>& info) {
      std::string name = info.param.Name();
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Figure 2 setup: t_x on node x updates r; the line migrates to node y
// because t_y updates the cohabiting record r2.
struct Figure2 {
  Figure2(Fixture& f) : fx(f) {
    r1 = fx.table[0];
    r2 = fx.table[1];
    // Records 0 and 1 share the first data line of the page (4 slots/line).
    EXPECT_EQ(fx.db.records().SlotLine(r1), fx.db.records().SlotLine(r2));
    tx = fx.db.txn().Begin(0);  // node x = 0
    ty = fx.db.txn().Begin(1);  // node y = 1
    EXPECT_TRUE(fx.db.txn().Update(tx, r1, Value(0xAA)).ok());
    EXPECT_TRUE(fx.db.txn().Update(ty, r2, Value(0xBB)).ok());
    // The line now lives exclusively on node y.
    const DirEntry* e = fx.db.machine().FindLine(fx.db.records().SlotLine(r1));
    EXPECT_EQ(e->owner, 1);
  }
  Fixture& fx;
  RecordId r1, r2;
  Transaction* tx;
  Transaction* ty;
};

TEST_P(CrashScenarioTest, Case1_CrashOfUpdaterUndoesMigratedUpdate) {
  Fixture fx(GetParam());
  Figure2 f2(fx);

  // Node x crashes: t_x's update to r1 physically survives on node y, but
  // must be undone; t_y must be unaffected.
  auto outcome = fx.db.Crash({0});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->annulled.size(), 1u);
  EXPECT_EQ(outcome->forced_aborts.size(), 0u);
  ASSERT_TRUE(fx.checker.VerifyAll().ok()) << fx.checker.VerifyAll().ToString();

  // r1 must be back to its committed (zero) value.
  auto slot = fx.db.records().SnoopSlot(f2.r1);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0));
  // r2 must still carry t_y's uncommitted update.
  auto slot2 = fx.db.records().SnoopSlot(f2.r2);
  ASSERT_TRUE(slot2.ok());
  EXPECT_EQ(slot2->data, Value(0xBB));

  // t_y can still commit.
  EXPECT_TRUE(fx.db.txn().Commit(f2.ty).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST_P(CrashScenarioTest, Case2_CrashOfHolderRedoesSurvivorUpdate) {
  Fixture fx(GetParam());
  Figure2 f2(fx);

  // Node y crashes holding the only copy of the line: t_x's update to r1
  // must be redone from node x's log; t_y's update to r2 must be undone.
  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->annulled.size(), 1u);
  EXPECT_EQ(outcome->forced_aborts.size(), 0u);
  ASSERT_TRUE(fx.checker.VerifyAll().ok()) << fx.checker.VerifyAll().ToString();

  auto slot = fx.db.records().SnoopSlot(f2.r1);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0xAA)) << "survivor's update was lost";
  auto slot2 = fx.db.records().SnoopSlot(f2.r2);
  ASSERT_TRUE(slot2.ok());
  EXPECT_EQ(slot2->data, Value(0)) << "crashed txn's update not undone";

  EXPECT_TRUE(fx.db.txn().Commit(f2.tx).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST_P(CrashScenarioTest, CommittedWorkSurvivesHolderCrash) {
  Fixture fx(GetParam());
  // t_x commits an update; the line then migrates to node y via t_y's
  // update to the cohabiting record; y crashes. The committed update must
  // be redone (no-force!) and t_y's update undone.
  Transaction* tx = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Update(tx, fx.table[0], Value(0x11)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(tx).ok());

  Transaction* ty = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(ty, fx.table[1], Value(0x22)).ok());

  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(fx.checker.VerifyAll().ok()) << fx.checker.VerifyAll().ToString();
  auto slot = fx.db.records().SnoopSlot(fx.table[0]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0x11));
}

TEST_P(CrashScenarioTest, WrSharingDirtyReadReplication) {
  Fixture fx(GetParam());
  // H_wr: t_x updates r; node y dirty-reads it (browse mode), replicating
  // the line. Crash of x must undo the update even though a copy survives
  // on y.
  Transaction* tx = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Update(tx, fx.table[0], Value(0x77)).ok());
  ASSERT_TRUE(fx.db.txn().DirtyRead(1, fx.table[0]).ok());
  EXPECT_TRUE(
      fx.db.machine().ProbeLine(fx.db.records().SlotLine(fx.table[0])));

  auto outcome = fx.db.Crash({0});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(fx.checker.VerifyAll().ok()) << fx.checker.VerifyAll().ToString();
  auto slot = fx.db.records().SnoopSlot(fx.table[0]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0));
}

TEST_P(CrashScenarioTest, MultiNodeCrash) {
  Fixture fx(GetParam());
  // Three active transactions on three nodes; two nodes crash at once.
  Transaction* t0 = fx.db.txn().Begin(0);
  Transaction* t1 = fx.db.txn().Begin(1);
  Transaction* t2 = fx.db.txn().Begin(2);
  ASSERT_TRUE(fx.db.txn().Update(t0, fx.table[0], Value(0x10)).ok());
  ASSERT_TRUE(fx.db.txn().Update(t1, fx.table[1], Value(0x20)).ok());
  ASSERT_TRUE(fx.db.txn().Update(t2, fx.table[2], Value(0x30)).ok());

  auto outcome = fx.db.Crash({0, 1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->annulled.size(), 2u);
  ASSERT_TRUE(fx.checker.VerifyAll().ok()) << fx.checker.VerifyAll().ToString();

  auto s2 = fx.db.records().SnoopSlot(fx.table[2]);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->data, Value(0x30));
  EXPECT_TRUE(fx.db.txn().Commit(t2).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST_P(CrashScenarioTest, StolenPageUndoneFromStableLog) {
  Fixture fx(GetParam());
  // t_x updates r1, the dirty page is stolen (flushed) before commit, then
  // x crashes. The stable database holds the uncommitted value; recovery
  // must undo it from x's stable log (WAL guarantees the records exist).
  Transaction* tx = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().Update(tx, fx.table[0], Value(0x99)).ok());
  ASSERT_TRUE(fx.db.buffers().FlushPage(2, fx.table[0].page).ok());

  auto outcome = fx.db.Crash({0});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(fx.checker.VerifyAll().ok()) << fx.checker.VerifyAll().ToString();
  auto slot = fx.db.records().SnoopSlot(fx.table[0]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0));
}

TEST_P(CrashScenarioTest, LockTableSurvivesCrash) {
  Fixture fx(GetParam());
  // Two transactions on different nodes hold a shared lock on the same
  // record; the LCB lives on whichever node acquired it last. Crash that
  // node: the survivor's (read) lock must be restored, the crashed
  // transaction's released.
  Transaction* t0 = fx.db.txn().Begin(0);
  Transaction* t1 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Read(t0, fx.table[3]).ok());
  ASSERT_TRUE(fx.db.txn().Read(t1, fx.table[3]).ok());

  auto outcome = fx.db.Crash({1});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(fx.checker.VerifyAll().ok()) << fx.checker.VerifyAll().ToString();

  uint64_t name = RecordLockName(fx.table[3]);
  auto mode = fx.db.locks().HeldMode(0, t0->id, name);
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, LockMode::kShared) << "survivor's read lock lost";
  auto holders = fx.db.locks().Holders(0, name);
  ASSERT_TRUE(holders.ok());
  EXPECT_EQ(holders->size(), 1u) << "crashed txn's lock not released";
}

TEST_P(CrashScenarioTest, WaiterUnblockedByCrashOfHolder) {
  Fixture fx(GetParam());
  Transaction* t0 = fx.db.txn().Begin(0);
  Transaction* t1 = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().Update(t0, fx.table[0], Value(1)).ok());
  // t1 blocks on the X lock held by t0.
  Status s = fx.db.txn().Update(t1, fx.table[0], Value(2));
  ASSERT_TRUE(s.IsBusy());

  // Crash t0's node: its lock is released and t1 promoted.
  auto outcome = fx.db.Crash({0});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto res = fx.db.txn().PollLock(t1, RecordLockName(fx.table[0]),
                                  LockMode::kExclusive);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, LockResult::kGranted);
  ASSERT_TRUE(fx.db.txn().Update(t1, fx.table[0], Value(2)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(t1).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
}

TEST_P(CrashScenarioTest, IndexInsertDeleteRecovery) {
  Fixture fx(GetParam());
  // Committed entry for key 5. t_x (node 0) deletes it logically and
  // inserts key 9; the leaf line migrates to node 1 via t_y's insert.
  Transaction* setup = fx.db.txn().Begin(2);
  ASSERT_TRUE(fx.db.txn().IndexInsert(setup, 5, fx.table[0]).ok());
  ASSERT_TRUE(fx.db.txn().Commit(setup).ok());

  Transaction* tx = fx.db.txn().Begin(0);
  ASSERT_TRUE(fx.db.txn().IndexDelete(tx, 5).ok());
  ASSERT_TRUE(fx.db.txn().IndexInsert(tx, 9, fx.table[1]).ok());
  Transaction* ty = fx.db.txn().Begin(1);
  ASSERT_TRUE(fx.db.txn().IndexInsert(ty, 7, fx.table[2]).ok());

  // Crash node 0: its logical delete must be unmarked, its insert removed;
  // t_y's insert must survive.
  auto outcome = fx.db.Crash({0});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(fx.checker.VerifyAll().ok()) << fx.checker.VerifyAll().ToString();

  auto l5 = fx.db.index().Lookup(2, 5);
  ASSERT_TRUE(l5.ok());
  EXPECT_TRUE(l5->has_value()) << "committed entry lost (delete not undone)";
  auto l9 = fx.db.index().Lookup(2, 9);
  ASSERT_TRUE(l9.ok());
  EXPECT_FALSE(l9->has_value()) << "crashed txn's insert not removed";
  auto l7 = fx.db.index().Lookup(2, 7);
  ASSERT_TRUE(l7.ok());
  EXPECT_TRUE(l7->has_value()) << "survivor's insert lost";

  EXPECT_TRUE(fx.db.txn().Commit(ty).ok());
  EXPECT_TRUE(fx.checker.VerifyAll().ok());
  EXPECT_TRUE(fx.db.index().CheckStructure(2).ok());
}

TEST_P(CrashScenarioTest, SurvivorContinuesAfterRecovery) {
  Fixture fx(GetParam());
  Figure2 f2(fx);
  auto outcome = fx.db.Crash({0});
  ASSERT_TRUE(outcome.ok());
  // The surviving transaction keeps working: more updates, then commit.
  ASSERT_TRUE(fx.db.txn().Update(f2.ty, fx.table[4], Value(0xCC)).ok());
  ASSERT_TRUE(fx.db.txn().Commit(f2.ty).ok());
  ASSERT_TRUE(fx.checker.VerifyAll().ok()) << fx.checker.VerifyAll().ToString();
  auto slot = fx.db.records().SnoopSlot(fx.table[4]);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot->data, Value(0xCC));
}

}  // namespace
}  // namespace smdb
