// Randomized property tests for the multiprocessor simulator: the coherent
// memory system is validated against a shadow flat-memory model, and the
// directory invariants are checked after every operation batch.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "sim/machine.h"

namespace smdb {
namespace {

struct MachinePropertyParam {
  CoherenceKind coherence;
  uint64_t seed;
};

class MachinePropertyTest
    : public ::testing::TestWithParam<MachinePropertyParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, MachinePropertyTest,
    ::testing::Values(
        MachinePropertyParam{CoherenceKind::kWriteInvalidate, 1},
        MachinePropertyParam{CoherenceKind::kWriteInvalidate, 2},
        MachinePropertyParam{CoherenceKind::kWriteInvalidate, 3},
        MachinePropertyParam{CoherenceKind::kWriteBroadcast, 1},
        MachinePropertyParam{CoherenceKind::kWriteBroadcast, 2}),
    [](const ::testing::TestParamInfo<MachinePropertyParam>& info) {
      return std::string(info.param.coherence ==
                                 CoherenceKind::kWriteInvalidate
                             ? "inval"
                             : "bcast") +
             "_s" + std::to_string(info.param.seed);
    });

void CheckDirectoryInvariants(const Machine& m, LineAddr first,
                              size_t lines) {
  for (size_t i = 0; i < lines; ++i) {
    const DirEntry* e = m.FindLine(first + i);
    if (e == nullptr) continue;
    if (e->owner != kInvalidNode) {
      // An exclusive owner is the sole sharer.
      EXPECT_EQ(e->num_sharers(), 1) << "line " << i;
      EXPECT_TRUE(e->cached_by(e->owner)) << "line " << i;
    }
    if (e->lost) {
      EXPECT_EQ(e->sharers, 0u) << "lost line still cached, line " << i;
    }
  }
}

TEST_P(MachinePropertyTest, CoherentAgainstShadowMemory) {
  const auto& p = GetParam();
  MachineConfig cfg;
  cfg.num_nodes = 8;
  cfg.coherence = p.coherence;
  Machine m(cfg);
  const size_t kBytes = 4096;
  Addr base = m.AllocShared(kBytes);
  std::vector<uint8_t> shadow(kBytes, 0);
  Rng rng(p.seed);

  for (int op = 0; op < 20000; ++op) {
    NodeId node = static_cast<NodeId>(rng.Uniform(8));
    Addr off = rng.Uniform(kBytes - 16);
    size_t len = rng.Range(1, 16);
    if (rng.Bernoulli(0.5)) {
      std::vector<uint8_t> data(len);
      for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
      ASSERT_TRUE(m.Write(node, base + off, data.data(), len).ok());
      std::memcpy(shadow.data() + off, data.data(), len);
    } else {
      std::vector<uint8_t> out(len);
      ASSERT_TRUE(m.Read(node, base + off, out.data(), len).ok());
      ASSERT_EQ(0, std::memcmp(out.data(), shadow.data() + off, len))
          << "incoherent read at op " << op;
    }
    if (op % 1000 == 0) {
      CheckDirectoryInvariants(m, m.LineOf(base), kBytes / cfg.line_size);
    }
  }
  // Final sweep: snoop must agree with the shadow everywhere.
  std::vector<uint8_t> all(kBytes);
  ASSERT_TRUE(m.SnoopRead(base, all.data(), kBytes).ok());
  EXPECT_EQ(all, shadow);
}

TEST_P(MachinePropertyTest, CrashPartitionsIntoLostAndIntact) {
  const auto& p = GetParam();
  MachineConfig cfg;
  cfg.num_nodes = 8;
  cfg.coherence = p.coherence;
  Machine m(cfg);
  const size_t kBytes = 4096;
  Addr base = m.AllocShared(kBytes);
  std::vector<uint8_t> shadow(kBytes, 0);
  Rng rng(p.seed * 31 + 7);

  for (int op = 0; op < 5000; ++op) {
    NodeId node = static_cast<NodeId>(rng.Uniform(8));
    Addr off = rng.Uniform(kBytes - 8);
    size_t len = rng.Range(1, 8);
    std::vector<uint8_t> data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
    ASSERT_TRUE(m.Write(node, base + off, data.data(), len).ok());
    std::memcpy(shadow.data() + off, data.data(), len);
    if (rng.Bernoulli(0.2)) {
      std::vector<uint8_t> out(len);
      NodeId reader = static_cast<NodeId>(rng.Uniform(8));
      ASSERT_TRUE(m.Read(reader, base + off, out.data(), len).ok());
    }
  }
  NodeId victim = static_cast<NodeId>(rng.Uniform(8));
  m.CrashNode(victim);

  // Every line is either probe-able with shadow-consistent contents, or
  // lost and rejected by every access path.
  size_t lines = kBytes / cfg.line_size;
  size_t lost = 0;
  for (size_t i = 0; i < lines; ++i) {
    LineAddr line = m.LineOf(base) + i;
    Addr a = base + i * cfg.line_size;
    std::vector<uint8_t> out(cfg.line_size);
    if (m.ProbeLine(line)) {
      ASSERT_FALSE(m.IsLineLost(line));
      ASSERT_TRUE(m.SnoopRead(a, out.data(), out.size()).ok());
      EXPECT_EQ(0, std::memcmp(out.data(), shadow.data() + i * cfg.line_size,
                               cfg.line_size))
          << "surviving line " << i << " lost writes";
    } else {
      ++lost;
      EXPECT_TRUE(m.IsLineLost(line));
      NodeId survivor = (victim + 1) % 8;
      EXPECT_TRUE(
          m.Read(survivor, a, out.data(), out.size()).IsLineLost());
      EXPECT_TRUE(m.SnoopRead(a, out.data(), out.size()).IsLineLost());
    }
  }
  if (p.coherence == CoherenceKind::kWriteBroadcast) {
    // Broadcast keeps copies replicated: losses should be rare (only lines
    // the victim alone ever touched and homes on the victim).
    EXPECT_LT(lost, lines / 2);
  }
  // Re-installing every lost line heals the machine.
  for (size_t i = 0; i < lines; ++i) {
    LineAddr line = m.LineOf(base) + i;
    if (!m.IsLineLost(line)) continue;
    m.InstallToMemory(base + i * cfg.line_size,
                      shadow.data() + i * cfg.line_size, cfg.line_size);
  }
  std::vector<uint8_t> all(kBytes);
  ASSERT_TRUE(m.SnoopRead(base, all.data(), kBytes).ok());
  EXPECT_EQ(all, shadow);
}

TEST(MachineTimingTest, CostsFollowTheModel) {
  MachineConfig cfg;
  cfg.num_nodes = 4;
  Machine m(cfg);
  Addr a = m.AllocShared(256);
  const TimingModel& t = cfg.timing;

  // Cold fetch from (zero-filled) home memory.
  SimTime t0 = m.NodeClock(0);
  ASSERT_TRUE(m.ReadValue<uint32_t>(0, a).ok());
  EXPECT_EQ(m.NodeClock(0) - t0, t.memory_access_ns);

  // Local hit.
  t0 = m.NodeClock(0);
  ASSERT_TRUE(m.ReadValue<uint32_t>(0, a).ok());
  EXPECT_EQ(m.NodeClock(0) - t0, t.cache_hit_ns);

  // Remote transfer.
  t0 = m.NodeClock(1);
  ASSERT_TRUE(m.ReadValue<uint32_t>(1, a).ok());
  EXPECT_EQ(m.NodeClock(1) - t0, t.remote_transfer_ns);

  // Write invalidating one remote copy: transfer-free local upgrade is not
  // possible (node 2 has no copy), so it pays a remote fetch plus one
  // invalidation bookkeeping tick per displaced copy.
  t0 = m.NodeClock(2);
  ASSERT_TRUE(m.WriteValue<uint32_t>(2, a, 5).ok());
  EXPECT_EQ(m.NodeClock(2) - t0,
            t.remote_transfer_ns + 2 * t.cpu_op_ns);
}

TEST(MachineTimingTest, GlobalTimeIsMaxOfAliveClocks) {
  MachineConfig cfg;
  cfg.num_nodes = 3;
  Machine m(cfg);
  m.Tick(0, 100);
  m.Tick(1, 500);
  m.Tick(2, 900);
  EXPECT_EQ(m.GlobalTime(), 900u);
  m.CrashNode(2);
  EXPECT_EQ(m.GlobalTime(), 500u);
  m.SyncClocks();
  EXPECT_EQ(m.NodeClock(0), 500u);
  EXPECT_EQ(m.NodeClock(1), 500u);
}

}  // namespace
}  // namespace smdb
