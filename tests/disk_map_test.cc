// Tests for the recoverable OS disk-allocation map (section 9 extension).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "os/disk_map.h"
#include "sim/machine.h"
#include "storage/stable_log.h"

namespace smdb {
namespace {

struct Fx {
  Fx() : machine(MakeCfg()), stable(4), log(&machine, &stable),
         map(&machine, &log, /*map_id=*/1, /*blocks=*/64) {}
  static MachineConfig MakeCfg() {
    MachineConfig c;
    c.num_nodes = 4;
    return c;
  }
  Machine machine;
  StableLogStore stable;
  LogManager log;
  DiskMap map;
};

TEST(DiskMapTest, AllocateConfirmFreeLifecycle) {
  Fx f;
  auto b = f.map.Allocate(0);
  ASSERT_TRUE(b.ok());
  auto st = f.map.StateOf(*b);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, BlockState::kProvisional);
  ASSERT_TRUE(f.map.Confirm(0, *b).ok());
  st = f.map.StateOf(*b);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, BlockState::kAllocated);
  ASSERT_TRUE(f.map.Free(1, *b).ok());
  st = f.map.StateOf(*b);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, BlockState::kFree);
}

TEST(DiskMapTest, DistinctBlocksAcrossNodes) {
  Fx f;
  std::set<uint32_t> seen;
  for (int i = 0; i < 32; ++i) {
    auto b = f.map.Allocate(static_cast<NodeId>(i % 4));
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(seen.insert(*b).second) << "double allocation";
  }
}

TEST(DiskMapTest, ExhaustionReturnsNotFound) {
  Fx f;
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(f.map.Allocate(0).ok());
  }
  EXPECT_TRUE(f.map.Allocate(0).status().IsNotFound());
}

TEST(DiskMapTest, DoubleFreeAndBadConfirmRejected) {
  Fx f;
  auto b = f.map.Allocate(0);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(f.map.Free(0, *b).ok());
  EXPECT_EQ(f.map.Free(0, *b).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(f.map.Confirm(0, *b).code(), Status::Code::kInvalidArgument);
}

TEST(DiskMapTest, CrashRollsBackProvisionalOfCrashedNode) {
  Fx f;
  ASSERT_TRUE(f.map.CheckpointToStable(0).ok());
  auto provisional = f.map.Allocate(1);
  ASSERT_TRUE(provisional.ok());
  auto confirmed = f.map.Allocate(1);
  ASSERT_TRUE(confirmed.ok());
  ASSERT_TRUE(f.map.Confirm(1, *confirmed).ok());

  f.machine.CrashNode(1);
  ASSERT_TRUE(f.map.RecoverAfterCrash(0, {1}).ok());
  ASSERT_TRUE(f.map.Verify().ok());

  auto st = f.map.StateOf(*provisional);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, BlockState::kFree) << "unconfirmed alloc must be reclaimed";
  st = f.map.StateOf(*confirmed);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, BlockState::kAllocated) << "confirmed alloc must survive";
}

TEST(DiskMapTest, SurvivorProvisionalSurvivesOtherNodesCrash) {
  Fx f;
  ASSERT_TRUE(f.map.CheckpointToStable(0).ok());
  auto mine = f.map.Allocate(0);
  ASSERT_TRUE(mine.ok());
  // Node 1 allocates from the same line: the map line migrates to node 1.
  auto theirs = f.map.Allocate(1);
  ASSERT_TRUE(theirs.ok());
  f.machine.CrashNode(1);
  ASSERT_TRUE(f.map.RecoverAfterCrash(0, {1}).ok());
  ASSERT_TRUE(f.map.Verify().ok());
  auto st = f.map.StateOf(*mine);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, BlockState::kProvisional)
      << "survivor's provisional allocation was lost";
  st = f.map.StateOf(*theirs);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*st, BlockState::kFree);
  // The survivor can still confirm its allocation.
  EXPECT_TRUE(f.map.Confirm(0, *mine).ok());
}

TEST(DiskMapTest, RandomizedCrashConsistency) {
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    Fx f;
    ASSERT_TRUE(f.map.CheckpointToStable(0).ok());
    // Shadow: expected state per block assuming the victim's provisional
    // allocations evaporate.
    std::map<uint32_t, std::pair<BlockState, NodeId>> shadow;
    for (int op = 0; op < 120; ++op) {
      NodeId node = static_cast<NodeId>(rng.Uniform(4));
      double roll = rng.NextDouble();
      if (roll < 0.6) {
        auto b = f.map.Allocate(node);
        if (b.ok()) shadow[*b] = {BlockState::kProvisional, node};
      } else if (roll < 0.8) {
        // Confirm one of this node's provisional blocks.
        for (auto& [blk, st] : shadow) {
          if (st.first == BlockState::kProvisional && st.second == node) {
            ASSERT_TRUE(f.map.Confirm(node, blk).ok());
            st = {BlockState::kAllocated, node};
            break;
          }
        }
      } else {
        for (auto& [blk, st] : shadow) {
          if (st.first == BlockState::kAllocated) {
            ASSERT_TRUE(f.map.Free(node, blk).ok());
            st = {BlockState::kFree, node};
            break;
          }
        }
      }
    }
    NodeId victim = static_cast<NodeId>(rng.Uniform(4));
    f.machine.CrashNode(victim);
    NodeId performer = (victim + 1) % 4;
    ASSERT_TRUE(f.map.RecoverAfterCrash(performer, {victim}).ok());
    ASSERT_TRUE(f.map.Verify().ok());
    for (const auto& [blk, st] : shadow) {
      BlockState expected = st.first;
      if (expected == BlockState::kProvisional && st.second == victim) {
        expected = BlockState::kFree;
      }
      auto actual = f.map.StateOf(blk);
      ASSERT_TRUE(actual.ok());
      EXPECT_EQ(*actual, expected)
          << "round " << round << " block " << blk;
    }
  }
}

}  // namespace
}  // namespace smdb
