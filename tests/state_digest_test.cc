// Unit tests for the StateDigest helper (core/state_digest.h) — the
// differential oracle of the parallel recovery pipeline. Pins down:
//   * determinism: digesting the same state twice is bit-identical, and
//     digesting is a pure observation (it never changes the digest);
//   * sensitivity: each covered component (heap bytes, index entries,
//     stable pages, lock table, transaction verdicts) moves its own
//     sub-hash when the corresponding state changes;
//   * exclusions: pure performance state — cache residency and simulated
//     time — leaves the digest alone.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/state_digest.h"

namespace smdb {
namespace {

std::vector<uint8_t> Value(uint8_t fill) {
  return std::vector<uint8_t>(22, fill);
}

struct Fx {
  explicit Fx(RecoveryConfig rc = RecoveryConfig::VolatileSelectiveRedo())
      : db(MakeCfg(rc)) {
    auto t = db.CreateTable(32);
    EXPECT_TRUE(t.ok());
    table = *t;
  }
  static DatabaseConfig MakeCfg(RecoveryConfig rc) {
    DatabaseConfig c;
    c.machine.num_nodes = 4;
    c.recovery = rc;
    return c;
  }
  Database db;
  std::vector<RecordId> table;
};

TEST(StateDigestTest, DeterministicAndPure) {
  Fx f;
  StateDigest a = ComputeStateDigest(f.db);
  StateDigest b = ComputeStateDigest(f.db);
  EXPECT_EQ(a, b) << "same state, different digest";
  EXPECT_EQ(a.Combined(), b.Combined());
  // Digesting must not advance the simulation or touch any machine state.
  SimTime before = f.db.machine().GlobalTime();
  ComputeStateDigest(f.db);
  EXPECT_EQ(f.db.machine().GlobalTime(), before);
}

TEST(StateDigestTest, IdenticalRunsProduceIdenticalDigests) {
  Fx f1, f2;
  for (Fx* f : {&f1, &f2}) {
    Transaction* t = f->db.txn().Begin(1);
    ASSERT_TRUE(f->db.txn().Update(t, f->table[3], Value(7)).ok());
    ASSERT_TRUE(f->db.txn().IndexInsert(t, 42, f->table[3]).ok());
    ASSERT_TRUE(f->db.txn().Commit(t).ok());
  }
  EXPECT_EQ(ComputeStateDigest(f1.db), ComputeStateDigest(f2.db));
}

TEST(StateDigestTest, HeapComponentTracksRecordBytes) {
  Fx f;
  StateDigest before = ComputeStateDigest(f.db);
  Transaction* t = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(0xAA)).ok());
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
  StateDigest after = ComputeStateDigest(f.db);
  EXPECT_NE(before.heap, after.heap);
  EXPECT_EQ(before.index, after.index);
  EXPECT_EQ(before.stable, after.stable);  // not flushed yet
}

TEST(StateDigestTest, IndexComponentTracksEntries) {
  Fx f;
  StateDigest before = ComputeStateDigest(f.db);
  Transaction* t = f.db.txn().Begin(2);
  ASSERT_TRUE(f.db.txn().IndexInsert(t, 99, f.table[1]).ok());
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
  StateDigest after = ComputeStateDigest(f.db);
  EXPECT_NE(before.index, after.index);
  EXPECT_EQ(before.heap, after.heap);
}

TEST(StateDigestTest, StableComponentTracksFlushes) {
  Fx f;
  Transaction* t = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(0x55)).ok());
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
  StateDigest before = ComputeStateDigest(f.db);
  ASSERT_TRUE(f.db.buffers().FlushPage(0, f.table[0].page).ok());
  StateDigest after = ComputeStateDigest(f.db);
  EXPECT_NE(before.stable, after.stable);
  EXPECT_EQ(before.heap, after.heap) << "flush must not change coherent bytes";
}

TEST(StateDigestTest, LockComponentTracksHeldLocks) {
  Fx f;
  StateDigest before = ComputeStateDigest(f.db);
  Transaction* t = f.db.txn().Begin(1);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[5], Value(1)).ok());
  // Mid-transaction: the X lock is held.
  StateDigest held = ComputeStateDigest(f.db);
  EXPECT_NE(before.locks, held.locks);
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
}

TEST(StateDigestTest, TxnComponentTracksVerdicts) {
  Fx f;
  StateDigest before = ComputeStateDigest(f.db);
  Transaction* t = f.db.txn().Begin(3);
  StateDigest active = ComputeStateDigest(f.db);
  EXPECT_NE(before.txns, active.txns);
  ASSERT_TRUE(f.db.txn().Abort(t).ok());
  StateDigest aborted = ComputeStateDigest(f.db);
  EXPECT_NE(active.txns, aborted.txns);
}

TEST(StateDigestTest, CacheResidencyIsExcluded) {
  Fx f;
  Transaction* t = f.db.txn().Begin(0);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[2], Value(3)).ok());
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
  StateDigest before = ComputeStateDigest(f.db);
  // A locked read from another node replicates/migrates the line — pure
  // performance state. The record bytes are unchanged.
  Transaction* r = f.db.txn().Begin(3);
  auto v = f.db.txn().Read(r, f.table[2]);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(f.db.txn().Commit(r).ok());
  StateDigest after = ComputeStateDigest(f.db);
  EXPECT_EQ(before.heap, after.heap);
  EXPECT_EQ(before.index, after.index);
  EXPECT_EQ(before.stable, after.stable);
}

TEST(StateDigestTest, LostLinesChangeTheDigest) {
  Fx f;
  Transaction* t = f.db.txn().Begin(1);
  ASSERT_TRUE(f.db.txn().Update(t, f.table[0], Value(9)).ok());
  ASSERT_TRUE(f.db.txn().Commit(t).ok());
  StateDigest before = ComputeStateDigest(f.db);
  // Crash the updater without running recovery: use the machine's failure
  // primitive directly so dirty lines whose only copy lived on node 1
  // become lost.
  f.db.machine().CrashNode(1);
  StateDigest after = ComputeStateDigest(f.db);
  EXPECT_NE(before, after) << "losing lines must be visible in the digest";
}

}  // namespace
}  // namespace smdb
