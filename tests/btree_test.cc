// Unit tests for the shared-memory B+-tree: inserts, logical deletes,
// lookups, splits as early-committed structural changes, undo operations,
// tombstone purging, and recovery helpers.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"

namespace smdb {
namespace {

struct TreeFixture {
  TreeFixture() : db(MakeCfg()) {}
  static DatabaseConfig MakeCfg() {
    DatabaseConfig c;
    c.machine.num_nodes = 4;
    return c;
  }
  BTree& tree() { return db.index(); }
  Database db;
};

TEST(BTreeTest, InsertLookupDelete) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(f.tree().Insert(0, t, 10, {5, 3}, kTagNone, &chain).ok());
  auto r = f.tree().Lookup(0, 10);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(**r, (RecordId{5, 3}));

  ASSERT_TRUE(f.tree().Delete(0, t, 10, kTagNone, &chain).ok());
  auto r2 = f.tree().Lookup(0, 10);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->has_value());
  // Logical delete: the entry still exists, tombstoned.
  auto e = f.tree().GetEntry(0, 10);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e->has_value());
  EXPECT_EQ((*e)->state, LeafEntryState::kTombstone);
}

TEST(BTreeTest, LookupMissingKey) {
  TreeFixture f;
  auto r = f.tree().Lookup(0, 999);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

TEST(BTreeTest, DuplicateInsertRejected) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(f.tree().Insert(0, t, 10, {1, 1}, kTagNone, &chain).ok());
  Status s = f.tree().Insert(0, t, 10, {2, 2}, kTagNone, &chain);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(BTreeTest, DeleteMissingKeyNotFound) {
  TreeFixture f;
  Lsn chain = kInvalidLsn;
  EXPECT_TRUE(
      f.tree().Delete(0, MakeTxnId(0, 1), 7, kTagNone, &chain).IsNotFound());
}

TEST(BTreeTest, ReinsertAfterDeleteReusesEntry) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(f.tree().Insert(0, t, 10, {1, 1}, kTagNone, &chain).ok());
  ASSERT_TRUE(f.tree().Delete(0, t, 10, kTagNone, &chain).ok());
  ASSERT_TRUE(f.tree().Insert(0, t, 10, {2, 2}, kTagNone, &chain).ok());
  auto r = f.tree().Lookup(0, 10);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(**r, (RecordId{2, 2}));
}

TEST(BTreeTest, SplitsAndStructure) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  // Leaf capacity is 124 at the default geometry; insert enough to force
  // several splits, in shuffled order.
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; k <= 600; ++k) keys.push_back(k * 7);
  Rng rng(9);
  rng.Shuffle(keys);
  for (uint64_t k : keys) {
    ASSERT_TRUE(f.tree().Insert(0, t, k, {1, uint16_t(k % 100)}, kTagNone,
                                &chain).ok())
        << k;
  }
  EXPECT_GT(f.tree().stats().splits, 0u);
  EXPECT_GT(f.tree().pages().size(), 4u);
  ASSERT_TRUE(f.tree().CheckStructure(0).ok());
  for (uint64_t k : keys) {
    auto r = f.tree().Lookup(0, k);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->has_value()) << k;
  }
  auto r = f.tree().Lookup(0, 3);  // never inserted (not multiple of 7)
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

TEST(BTreeTest, SplitIsEarlyCommitted) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  for (uint64_t k = 1; k <= 200; ++k) {
    ASSERT_TRUE(f.tree().Insert(0, t, k, {1, 0}, kTagNone, &chain).ok());
  }
  ASSERT_GT(f.tree().stats().splits, 0u);
  EXPECT_GE(f.tree().stats().early_commits, f.tree().stats().splits);
  // Early commit forced structural records to stable storage.
  bool structural_stable = false;
  f.db.log().ForEachStable(0, [&](const LogRecord& rec) {
    if (rec.type == LogRecordType::kStructural) structural_stable = true;
  });
  EXPECT_TRUE(structural_stable);
}

TEST(BTreeTest, PurgeCommittedTombstones) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  // Fill a leaf, delete everything (committed: tag none), then reinsert:
  // the tombstones must be purged rather than splitting.
  for (uint64_t k = 1; k <= 124; ++k) {
    ASSERT_TRUE(f.tree().Insert(0, t, k, {1, 0}, kTagNone, &chain).ok());
  }
  for (uint64_t k = 1; k <= 124; ++k) {
    ASSERT_TRUE(f.tree().Delete(0, t, k, kTagNone, &chain).ok());
  }
  uint64_t splits_before = f.tree().stats().splits;
  for (uint64_t k = 200; k < 200 + 60; ++k) {
    ASSERT_TRUE(f.tree().Insert(0, t, k, {1, 0}, kTagNone, &chain).ok());
  }
  EXPECT_EQ(f.tree().stats().splits, splits_before);
  EXPECT_GT(f.tree().stats().purged_tombstones, 0u);
}

TEST(BTreeTest, UncommittedTombstoneSpaceNotReused) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  // Fill a leaf with *uncommitted* deletes (tagged): space must NOT be
  // reclaimed (section 4.2.1), so the next insert splits instead.
  TreeFixture& g = f;
  for (uint64_t k = 1; k <= 124; ++k) {
    ASSERT_TRUE(g.tree().Insert(0, t, k, {1, 0}, kTagNone, &chain).ok());
  }
  for (uint64_t k = 1; k <= 124; ++k) {
    ASSERT_TRUE(g.tree().Delete(0, t, k, TagForNode(0), &chain).ok());
  }
  uint64_t splits_before = g.tree().stats().splits;
  ASSERT_TRUE(g.tree().Insert(0, t, 999, {1, 0}, kTagNone, &chain).ok());
  EXPECT_GT(g.tree().stats().splits, splits_before);
  EXPECT_EQ(g.tree().stats().purged_tombstones, 0u);
}

TEST(BTreeTest, UndoInsertRemovesEntry) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(f.tree().Insert(0, t, 10, {1, 1}, TagForNode(0), &chain).ok());
  ASSERT_TRUE(f.tree().UndoInsert(0, t, 10, &chain, true).ok());
  auto e = f.tree().GetEntry(0, 10);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->has_value());
}

TEST(BTreeTest, UndoDeleteUnmarks) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(f.tree().Insert(0, t, 10, {1, 1}, kTagNone, &chain).ok());
  ASSERT_TRUE(f.tree().Delete(0, t, 10, TagForNode(0), &chain).ok());
  ASSERT_TRUE(f.tree().UndoDelete(0, t, 10, &chain, true).ok());
  auto r = f.tree().Lookup(0, 10);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(**r, (RecordId{1, 1}));
}

TEST(BTreeTest, RedoIndexOpIdempotent) {
  TreeFixture f;
  IndexOpPayload op;
  op.tree_id = 1;
  op.op = IndexOpPayload::Op::kInsert;
  op.key = 5;
  op.value = {2, 2};
  op.usn = 100;
  ASSERT_TRUE(f.tree().RedoIndexOp(0, op, kTagNone).ok());
  ASSERT_TRUE(f.tree().RedoIndexOp(0, op, kTagNone).ok());  // no-op
  auto entries = f.tree().CollectEntries(true);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
  // A delete redo with a lower USN must not apply.
  IndexOpPayload del;
  del.tree_id = 1;
  del.op = IndexOpPayload::Op::kDelete;
  del.key = 5;
  del.usn = 50;
  ASSERT_TRUE(f.tree().RedoIndexOp(0, del, kTagNone).ok());
  auto r = f.tree().Lookup(0, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
  // With a higher USN it applies.
  del.usn = 200;
  ASSERT_TRUE(f.tree().RedoIndexOp(0, del, kTagNone).ok());
  r = f.tree().Lookup(0, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

TEST(BTreeTest, EntriesInLineFindsTaggedEntries) {
  TreeFixture f;
  TxnId t = MakeTxnId(2, 1);
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(f.tree().Insert(2, t, 42, {1, 1}, TagForNode(2), &chain).ok());
  auto line = f.tree().LineOfKey(2, 42);
  ASSERT_TRUE(line.ok());
  auto refs = f.tree().EntriesInLine(*line);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].entry.key, 42u);
  EXPECT_EQ(refs[0].entry.tag, TagForNode(2));
}

TEST(BTreeTest, CollectEntriesFiltersTombstones) {
  TreeFixture f;
  TxnId t = MakeTxnId(0, 1);
  Lsn chain = kInvalidLsn;
  ASSERT_TRUE(f.tree().Insert(0, t, 1, {1, 0}, kTagNone, &chain).ok());
  ASSERT_TRUE(f.tree().Insert(0, t, 2, {1, 1}, kTagNone, &chain).ok());
  ASSERT_TRUE(f.tree().Delete(0, t, 1, kTagNone, &chain).ok());
  auto live = f.tree().CollectEntries(false);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->size(), 1u);
  auto all = f.tree().CollectEntries(true);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

}  // namespace
}  // namespace smdb
