// Differential test matrix for the sharded execution hot path: a width-W
// run (ExecutionConfig::execution_threads = W) must replay the *identical*
// seeded schedule the serial dispatcher executes, batching only
// footprint-disjoint steps — so the entire logical outcome is
// width-invariant, not just "some equivalent serialisation".
//
// For every sampled fuzz scenario and every protocol preset, a serial run
// captures a StateDigest after each recovery plus the end-of-run digest.
// Then the same schedule re-runs at W ∈ {2, 4, 8} and *every* digest must
// match bit for bit, along with the executor's logical counters (commits,
// aborts, retries, lock waits — all schedule-determined). Steal flushing is
// disabled: the daemon's flush timing is batch-granular under sharding
// (performance state, like clocks), so the exactness matrix runs without
// it and a separate relaxed test covers steal-heavy schedules.
//
// The matrix shards into four seed ranges so `ctest -j` runs them
// concurrently; together they cover 100 fuzz-style seeds x 7 protocols x 3
// widths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/fuzzer.h"

namespace smdb {
namespace {

void ExpectSameExecStats(const ExecutorStats& serial,
                         const ExecutorStats& sharded,
                         const std::string& where) {
  EXPECT_EQ(serial.committed, sharded.committed) << where;
  EXPECT_EQ(serial.aborted_deadlock, sharded.aborted_deadlock) << where;
  EXPECT_EQ(serial.aborted_other, sharded.aborted_other) << where;
  EXPECT_EQ(serial.retries, sharded.retries) << where;
  EXPECT_EQ(serial.ops_executed, sharded.ops_executed) << where;
  EXPECT_EQ(serial.lock_waits, sharded.lock_waits) << where;
  EXPECT_EQ(serial.commit_waits, sharded.commit_waits) << where;
}

void RunSeedRange(uint64_t begin, uint64_t end) {
  const std::vector<RecoveryConfig> protocols =
      CrashScheduleFuzzer::DefaultProtocols();
  size_t sharded_runs = 0;
  for (uint64_t seed = begin; seed < end; ++seed) {
    FuzzCase fc = SampleFuzzCase(seed);
    for (const RecoveryConfig& rc : protocols) {
      std::string ctx_base =
          "seed " + std::to_string(seed) + " protocol " + rc.Name();
      HarnessConfig base = MakeHarnessConfig(fc, rc);
      base.capture_digests = true;
      base.steal_flush_prob = 0.0;  // exactness matrix: no steal daemon

      Harness hs(base);
      auto serial = hs.Run();
      ASSERT_TRUE(serial.ok())
          << ctx_base << ": " << serial.status().ToString();
      ASSERT_TRUE(serial->verify_status.ok())
          << ctx_base << ": " << serial->verify_status.ToString();

      for (uint32_t w : {2u, 4u, 8u}) {
        std::string where = ctx_base + " W=" + std::to_string(w);
        HarnessConfig cfg = base;
        cfg.exec.execution_threads = w;
        Harness hp(cfg);
        auto report = hp.Run();
        ASSERT_TRUE(report.ok()) << where << ": "
                                 << report.status().ToString();
        EXPECT_TRUE(report->verify_status.ok())
            << where << ": " << report->verify_status.ToString();
        ASSERT_EQ(report->digests.size(), serial->digests.size()) << where;
        for (size_t i = 0; i < serial->digests.size(); ++i) {
          ASSERT_EQ(report->digests[i], serial->digests[i])
              << where << " digest " << i
              << "\n  serial:  " << serial->digests[i].ToString()
              << "\n  sharded: " << report->digests[i].ToString();
        }
        EXPECT_EQ(report->steps, serial->steps) << where;
        ExpectSameExecStats(serial->exec, report->exec, where);
        EXPECT_EQ(serial->txns.commits, report->txns.commits) << where;
        EXPECT_EQ(serial->txns.aborts, report->txns.aborts) << where;
        EXPECT_EQ(serial->txns.updates, report->txns.updates) << where;
        EXPECT_EQ(serial->txns.undo_tag_writes, report->txns.undo_tag_writes)
            << where;
        ++sharded_runs;
      }
    }
  }
  // The shard must actually exercise sharded execution — a sampler
  // regression that empties the workload would otherwise pass vacuously.
  EXPECT_GT(sharded_runs, 0u);
}

TEST(ExecutionSharding, SeedsShard0) { RunSeedRange(0, 25); }
TEST(ExecutionSharding, SeedsShard1) { RunSeedRange(25, 50); }
TEST(ExecutionSharding, SeedsShard2) { RunSeedRange(50, 75); }
TEST(ExecutionSharding, SeedsShard3) { RunSeedRange(75, 100); }

// Steal-heavy schedules at width 8: flush *timing* is batch-granular, so
// digests are not compared against serial — but the run must stay
// IFA-clean (the oracle verifies after every recovery and at the end) and
// deterministic against itself.
TEST(ExecutionSharding, StealHeavyStillIfaCleanAtWidth8) {
  const std::vector<RecoveryConfig> protocols =
      CrashScheduleFuzzer::DefaultProtocols();
  for (uint64_t seed = 300; seed < 312; ++seed) {
    FuzzCase fc = SampleFuzzCase(seed);
    for (const RecoveryConfig& rc : protocols) {
      std::string ctx =
          "seed " + std::to_string(seed) + " protocol " + rc.Name();
      HarnessConfig cfg = MakeHarnessConfig(fc, rc);
      cfg.steal_flush_prob = 0.2;
      cfg.capture_digests = true;
      cfg.exec.execution_threads = 8;
      Harness h8(cfg);
      auto a = h8.Run();
      ASSERT_TRUE(a.ok()) << ctx << ": " << a.status().ToString();
      EXPECT_TRUE(a->verify_status.ok())
          << ctx << ": " << a->verify_status.ToString();
      Harness h8b(cfg);
      auto b = h8b.Run();
      ASSERT_TRUE(b.ok()) << ctx;
      ASSERT_EQ(a->digests.size(), b->digests.size()) << ctx;
      for (size_t i = 0; i < a->digests.size(); ++i) {
        EXPECT_EQ(a->digests[i], b->digests[i])
            << ctx << " width-8 rerun not deterministic at digest " << i;
      }
    }
  }
}

// Requesting more workers than the machine has nodes degrades gracefully:
// batches are capped by the one-pick-per-node rule, never by width.
TEST(ExecutionSharding, MoreThreadsThanNodes) {
  FuzzCase fc = SampleFuzzCase(7);
  RecoveryConfig rc = RecoveryConfig::VolatileSelectiveRedo();
  HarnessConfig base = MakeHarnessConfig(fc, rc);
  base.capture_digests = true;
  base.steal_flush_prob = 0.0;
  Harness hs(base);
  auto serial = hs.Run();
  ASSERT_TRUE(serial.ok());
  HarnessConfig cfg = base;
  cfg.exec.execution_threads = 32;  // >> num_nodes
  Harness hp(cfg);
  auto report = hp.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->digests.size(), serial->digests.size());
  for (size_t i = 0; i < serial->digests.size(); ++i) {
    EXPECT_EQ(report->digests[i], serial->digests[i]) << "digest " << i;
  }
}

}  // namespace
}  // namespace smdb
