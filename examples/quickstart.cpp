// Quickstart: build a shared-memory database on the simulated
// cache-coherent multiprocessor, run transactions on several nodes, crash
// one node, and watch Isolated Failure Atomicity at work.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/recovery_manager.h"

using namespace smdb;

int main() {
  // A 4-node machine (figure 1): per-node caches, write-invalidate
  // hardware coherence at 128-byte line granularity, shared disks.
  DatabaseConfig config;
  config.machine.num_nodes = 4;
  config.recovery = RecoveryConfig::VolatileSelectiveRedo();

  Database db(config);
  std::printf("machine: %u nodes, %u-byte lines, protocol %s\n",
              db.machine().num_nodes(), db.machine().line_size(),
              config.recovery.Name().c_str());

  // The IFA checker is an oracle that watches every transaction and can
  // verify the machine state after a crash.
  IfaChecker checker(&db);
  db.txn().AddObserver(&checker);

  // A small table. Four 22-byte records share each 128-byte cache line —
  // the space-efficient layout that makes recovery interesting.
  auto table = db.CreateTable(16).value();
  checker.RegisterTable(table);
  (void)db.Checkpoint(0);

  // t_x on node 0 updates record r1; t_y on node 1 updates r2, which lives
  // in the SAME cache line: the line (with t_x's uncommitted update in it)
  // migrates to node 1.
  std::vector<uint8_t> va(22, 0xAA), vb(22, 0xBB);
  Transaction* tx = db.txn().Begin(0);
  Transaction* ty = db.txn().Begin(1);
  (void)db.txn().Update(tx, table[0], va);
  (void)db.txn().Update(ty, table[1], vb);
  std::printf("line of r1 is now owned by node %u (it migrated!)\n",
              db.machine().FindLine(db.records().SlotLine(table[0]))->owner);

  // Crash node 0. Its control state and volatile log are destroyed; its
  // uncommitted update survives — wrongly — in node 1's cache, so restart
  // recovery must undo it there, without touching t_y.
  auto outcome = db.Crash({0}).value();
  std::printf("crash of node 0 -> %s\n", outcome.ToString().c_str());

  Status verdict = checker.VerifyAll();
  std::printf("IFA check: %s\n", verdict.ToString().c_str());

  // The surviving transaction is untouched and commits normally.
  Status s = db.txn().Commit(ty);
  std::printf("t_y commit on surviving node: %s\n", s.ToString().c_str());
  std::printf("final IFA check: %s\n", checker.VerifyAll().ToString().c_str());

  std::printf("\nstats:\n%s\n", db.machine().stats().ToString().c_str());
  return verdict.ok() ? 0 : 1;
}
