// The geographically-dispersed DSM scenario of section 3.3: users "plug
// into" a distributed-shared-memory network and may power their machines
// off at any moment, "essentially simulating a node crash". Without IFA
// such a network would be unusable; with it, the survivors never notice.
//
// This example runs a workload on a 16-node DSM machine while nodes keep
// powering off (and rejoining cold), comparing the configured IFA protocol
// against what a RebootAll world would have done to the same community.

#include <cstdio>

#include "workload/harness.h"

using namespace smdb;

namespace {

HarnessReport RunWorld(RecoveryConfig rc, const char* label) {
  HarnessConfig cfg;
  cfg.db.machine.num_nodes = 16;
  cfg.db.recovery = rc;
  cfg.num_records = 512;
  cfg.workload.txns_per_node = 20;
  cfg.workload.ops_per_txn = 6;
  cfg.workload.write_ratio = 0.6;
  cfg.workload.zipf_theta = 0.8;  // hot records: heavy line sharing
  cfg.workload.seed = 20260704;
  cfg.seed = 1337;
  cfg.steal_flush_prob = 0.01;
  cfg.checkpoint_every_steps = 400;
  // Users yanking power cords all afternoon; most plug back in later.
  cfg.crashes = {
      {200, {3}, true},  {450, {11}, true}, {700, {5}, true},
      {950, {3}, true},  {1200, {8}, true}, {1500, {14}, true},
  };
  Harness h(cfg);
  auto report = h.Run();
  if (!report.ok()) {
    std::printf("%s: run failed: %s\n", label,
                report.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%-28s committed=%llu  unnecessary aborts=%llu  verify=%s\n",
              label, static_cast<unsigned long long>(report->exec.committed),
              static_cast<unsigned long long>(report->unnecessary_aborts()),
              report->verify_status.ToString().c_str());
  return *report;
}

}  // namespace

int main() {
  std::printf(
      "16-node geographically dispersed DSM; 6 power-downs during the run\n"
      "(section 3.3: every power-down is a node crash)\n\n");
  auto ifa = RunWorld(RecoveryConfig::VolatileSelectiveRedo(),
                      "IFA (Volatile+Selective):");
  auto reboot = RunWorld(RecoveryConfig::BaselineRebootAll(),
                         "no IFA (RebootAll):");
  std::printf(
      "\nwith IFA every power-down annulled only the disconnected user's "
      "work;\nwithout it, each of the %zu power-downs froze and aborted the "
      "entire\nnetwork (%llu transactions of other users aborted in total) "
      "— the paper's\nargument for why dispersed DSM needs IFA.\n",
      reboot.recoveries.size(),
      static_cast<unsigned long long>(reboot.unnecessary_aborts()));
  return ifa.verify_status.ok() ? 0 : 1;
}
