// A TP1-style banking workload (the OLTP setting the paper's related work
// benchmarks on shared-memory multiprocessors): account records in shared
// memory, transfer transactions on every node, periodic steal flushes and
// checkpoints, and a node crash in the middle of the day.
//
// Demonstrates: end-to-end money conservation across crashes — committed
// transfers survive, in-flight transfers on the crashed node vanish
// atomically, in-flight transfers on surviving nodes keep running.

#include <cstdio>
#include <cstring>

#include "common/rng.h"
#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/recovery_manager.h"

using namespace smdb;

namespace {

constexpr uint64_t kInitialBalance = 1000;
constexpr size_t kAccounts = 200;

std::vector<uint8_t> EncodeBalance(uint64_t cents) {
  std::vector<uint8_t> v(22, 0);
  std::memcpy(v.data(), &cents, 8);
  return v;
}

uint64_t DecodeBalance(const std::vector<uint8_t>& v) {
  uint64_t cents = 0;
  std::memcpy(&cents, v.data(), 8);
  return cents;
}

}  // namespace

int main() {
  DatabaseConfig config;
  config.machine.num_nodes = 6;
  config.recovery = RecoveryConfig::VolatileSelectiveRedo();
  Database db(config);
  IfaChecker checker(&db);
  db.txn().AddObserver(&checker);

  auto accounts = db.CreateTable(kAccounts).value();
  checker.RegisterTable(accounts);

  // Fund the accounts.
  {
    Transaction* t = db.txn().Begin(0);
    for (RecordId acc : accounts) {
      (void)db.txn().Update(t, acc, EncodeBalance(kInitialBalance));
    }
    (void)db.txn().Commit(t);
  }
  (void)db.Checkpoint(0);

  Rng rng(2026);
  uint64_t committed_transfers = 0, failed_transfers = 0;
  bool crashed = false;

  auto transfer = [&](NodeId node) -> Status {
    Transaction* t = db.txn().Begin(node);
    // Lock ordering by record id avoids deadlocks in this simple driver.
    size_t a = rng.Uniform(kAccounts), b = rng.Uniform(kAccounts);
    if (a == b) b = (b + 1) % kAccounts;
    RecordId from = accounts[std::min(a, b)];
    RecordId to = accounts[std::max(a, b)];
    uint64_t amount = rng.Range(1, 50);

    auto from_v = db.txn().Read(t, from);
    if (!from_v.ok()) return from_v.status();
    auto to_v = db.txn().Read(t, to);
    if (!to_v.ok()) return to_v.status();
    uint64_t fb = DecodeBalance(*from_v), tb = DecodeBalance(*to_v);
    if (fb < amount) return db.txn().Abort(t);
    SMDB_RETURN_IF_ERROR(db.txn().Update(t, from, EncodeBalance(fb - amount)));
    SMDB_RETURN_IF_ERROR(db.txn().Update(t, to, EncodeBalance(tb + amount)));
    SMDB_RETURN_IF_ERROR(db.txn().Commit(t));
    ++committed_transfers;
    return Status::Ok();
  };

  for (int round = 0; round < 300; ++round) {
    for (NodeId node = 0; node < config.machine.num_nodes; ++node) {
      if (!db.machine().NodeAlive(node)) continue;
      Status s = transfer(node);
      if (!s.ok() && !s.IsBusy()) ++failed_transfers;
    }
    if (round == 150 && !crashed) {
      crashed = true;
      std::printf("== node 2 powers off mid-round ==\n");
      auto outcome = db.Crash({2}).value();
      std::printf("recovery: %s\n", outcome.ToString().c_str());
      std::printf("IFA: %s\n", checker.VerifyAll().ToString().c_str());
    }
    if (round % 100 == 99) (void)db.Checkpoint(0);
  }

  // Audit: total money must be conserved (atomic transfers only).
  uint64_t total = 0;
  for (RecordId acc : accounts) {
    total += DecodeBalance(db.records().SnoopSlot(acc)->data);
  }
  std::printf("committed transfers: %llu (+%llu aborted/failed)\n",
              static_cast<unsigned long long>(committed_transfers),
              static_cast<unsigned long long>(failed_transfers));
  std::printf("bank total: %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(kAccounts * kInitialBalance),
              total == kAccounts * kInitialBalance ? "CONSERVED" : "LOST!");
  std::printf("final IFA: %s\n", checker.VerifyAll().ToString().c_str());
  return total == kAccounts * kInitialBalance ? 0 : 1;
}
