// A B+-tree workload with crash recovery (section 4.2.1): concurrent
// inserts and logical deletes from several nodes, page splits committed
// early as nested top-level actions, then a crash that strands uncommitted
// index entries on surviving nodes.
//
// Shows: committed entries survive, crashed transactions' inserts are
// removed and their logical deletes unmarked, splits persist, and the tree
// stays structurally sound.

#include <cstdio>

#include "core/database.h"
#include "core/ifa_checker.h"
#include "core/recovery_manager.h"

using namespace smdb;

int main() {
  DatabaseConfig config;
  config.machine.num_nodes = 4;
  config.recovery = RecoveryConfig::VolatileSelectiveRedo();
  Database db(config);
  IfaChecker checker(&db);
  db.txn().AddObserver(&checker);
  auto table = db.CreateTable(64).value();
  checker.RegisterTable(table);

  // Phase 1: bulk-load enough committed keys to force page splits.
  {
    for (int batch = 0; batch < 8; ++batch) {
      Transaction* t = db.txn().Begin(batch % 4);
      for (uint64_t i = 0; i < 40; ++i) {
        uint64_t key = batch * 40 + i + 1;
        (void)db.txn().IndexInsert(t, key, table[key % table.size()]);
      }
      (void)db.txn().Commit(t);
    }
  }
  std::printf("bulk load: %llu splits, %llu early commits, %zu pages\n",
              static_cast<unsigned long long>(db.index().stats().splits),
              static_cast<unsigned long long>(db.index().stats().early_commits),
              db.index().pages().size());
  (void)db.Checkpoint(0);

  // Phase 2: active transactions mutate the index from every node.
  Transaction* t0 = db.txn().Begin(0);  // will crash
  Transaction* t1 = db.txn().Begin(1);  // survivor
  (void)db.txn().IndexDelete(t0, 17);        // logical delete (mark)
  (void)db.txn().IndexInsert(t0, 999, table[3]);
  (void)db.txn().IndexInsert(t1, 1001, table[5]);
  (void)db.txn().IndexDelete(t1, 44);

  std::printf("\nbefore crash: key 17 %s, key 999 %s, key 1001 %s\n",
              db.index().Lookup(2, 17)->has_value() ? "live" : "deleted",
              db.index().Lookup(2, 999)->has_value() ? "live" : "absent",
              db.index().Lookup(2, 1001)->has_value() ? "live" : "absent");

  // Crash node 0: its logical delete must be unmarked ("the undo of a
  // delete is effected by merely unmarking the record") and its insert
  // removed; node 1's operations must be preserved.
  auto outcome = db.Crash({0}).value();
  std::printf("\ncrash of node 0 -> %s\n", outcome.ToString().c_str());

  std::printf("after recovery: key 17 %s (expect live), key 999 %s (expect "
              "absent), key 1001 %s (expect live-uncommitted)\n",
              db.index().Lookup(2, 17)->has_value() ? "live" : "deleted",
              db.index().Lookup(2, 999)->has_value() ? "live" : "absent",
              db.index().Lookup(2, 1001)->has_value() ? "live" : "absent");

  Status s1 = db.txn().Commit(t1);
  Status tree_ok = db.index().CheckStructure(2);
  Status ifa = checker.VerifyAll();
  std::printf("\nsurvivor commit: %s\ntree structure: %s\nIFA: %s\n",
              s1.ToString().c_str(), tree_ok.ToString().c_str(),
              ifa.ToString().c_str());
  return (ifa.ok() && tree_ok.ok()) ? 0 : 1;
}
