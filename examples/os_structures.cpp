// Section 9's closing suggestion, made concrete: operating system data
// structures in shared memory (here, a disk-allocation map) protected with
// the same recovery recipe as database objects — volatile logging before
// migration, per-entry undo tags, redo from surviving logs, rollback of
// crashed nodes' provisional state.

#include <cstdio>

#include "os/disk_map.h"
#include "sim/machine.h"
#include "storage/stable_log.h"
#include "wal/log_manager.h"

using namespace smdb;

int main() {
  MachineConfig mc;
  mc.num_nodes = 4;
  Machine machine(mc);
  StableLogStore stable(mc.num_nodes);
  LogManager log(&machine, &stable);
  DiskMap map(&machine, &log, /*map_id=*/1, /*blocks=*/64);
  (void)map.CheckpointToStable(0);

  // Nodes 0..3 allocate disk blocks; the bitmap lines ping-pong between
  // them (16 block entries share each cache line).
  uint32_t confirmed_by_1 = 0, provisional_by_1 = 0, mine = 0;
  {
    auto a = map.Allocate(0).value();           // node 0, stays provisional
    mine = a;
    confirmed_by_1 = map.Allocate(1).value();   // node 1, confirmed
    (void)map.Confirm(1, confirmed_by_1);
    provisional_by_1 = map.Allocate(1).value(); // node 1, provisional
    (void)map.Allocate(2).value();
    (void)map.Allocate(3).value();
  }
  std::printf("allocated 5 blocks across 4 nodes "
              "(block entries share cache lines)\n");

  // Node 1 crashes. Its confirmed block must survive; its provisional one
  // must be reclaimed; node 0's provisional allocation — whose bitmap line
  // migrated to node 1! — must be preserved.
  machine.CrashNode(1);
  Status s = map.RecoverAfterCrash(0, {1});
  std::printf("node 1 crashed; map recovery: %s\n", s.ToString().c_str());

  auto show = [&](const char* what, uint32_t b) {
    const char* names[] = {"free", "provisional", "allocated"};
    std::printf("  %-28s -> %s\n", what,
                names[static_cast<int>(map.StateOf(b).value())]);
  };
  show("node 0 provisional (mine)", mine);
  show("node 1 confirmed", confirmed_by_1);
  show("node 1 provisional", provisional_by_1);

  Status v = map.Verify();
  std::printf("map integrity: %s\n", v.ToString().c_str());
  std::printf("stats: redo=%llu rollbacks=%llu\n",
              static_cast<unsigned long long>(map.stats().recovered_redo),
              static_cast<unsigned long long>(
                  map.stats().recovered_rollbacks));
  return v.ok() ? 0 : 1;
}
